(* The paper's graph queries: record weights must match the closed forms
   (Eqs. 3, 4, 6, 8), use-counts must match the published privacy costs,
   and Batch/Flow instantiations must agree. *)

module Wdata = Wpinq_weighted.Wdata
module Graph = Wpinq_graph.Graph
module Gen = Wpinq_graph.Gen
module Prng = Wpinq_prng.Prng
module Budget = Wpinq_core.Budget
module Batch = Wpinq_core.Batch
module Flow = Wpinq_core.Flow
module Queries = Wpinq_queries.Queries
module Dataflow = Wpinq_dataflow.Dataflow
open Helpers

module Qb = Queries.Make (Batch)
module Qf = Queries.Make (Flow)

let sym_source g =
  let budget = Budget.create ~name:"edges" 1e9 in
  (budget, Batch.source_records ~budget (Graph.directed_edges g))

let eval q = Batch.unsafe_value q

let random_graph seed = Gen.erdos_renyi ~n:24 ~m:60 (Prng.create seed)
let clustered_graph seed = Gen.clustered ~n:60 ~community:8 ~p_in:0.7 ~extra:30 (Prng.create seed)

(* ---- use counting: the paper's privacy costs ---- *)

let uses q = match Batch.uses q with [ (_, n) ] -> n | _ -> -1

let test_privacy_costs () =
  let _, sym = sym_source (random_graph 1) in
  Alcotest.(check int) "degree ccdf: 1" 1 (uses (Qb.degree_ccdf sym));
  Alcotest.(check int) "degree sequence: 1" 1 (uses (Qb.degree_sequence sym));
  Alcotest.(check int) "node count: 1" 1 (uses (Qb.node_count sym));
  Alcotest.(check int) "edge count: 1" 1 (uses (Qb.edge_count sym));
  Alcotest.(check int) "paths: 2" 2 (uses (Qb.paths2 sym));
  Alcotest.(check int) "JDD: 4" 4 (uses (Qb.jdd sym));
  Alcotest.(check int) "TbD: 9" 9 (uses (Qb.tbd sym));
  Alcotest.(check int) "TbI: 4" 4 (uses (Qb.tbi sym));
  Alcotest.(check int) "SbD: 12" 12 (uses (Qb.sbd sym));
  Alcotest.(check int) "degree histogram: 1" 1 (uses (Qb.degree_histogram sym));
  Alcotest.(check int) "paths3: 3" 3 (uses (Qb.paths3 sym));
  Alcotest.(check int) "SbI: 6" 6 (uses (Qb.sbi sym));
  (* Starting from the undirected edge list doubles everything
     (Theorems 2-3). *)
  let budget = Budget.create ~name:"undirected" 1e9 in
  let undirected = Batch.source_records ~budget (Graph.edges (random_graph 1)) in
  Alcotest.(check int) "TbD from undirected: 18" 18 (uses (Qb.tbd (Qb.symmetrize undirected)));
  Alcotest.(check int) "TbI from undirected: 8" 8 (uses (Qb.tbi (Qb.symmetrize undirected)))

(* ---- degree statistics ---- *)

let test_degrees_weights () =
  let g = random_graph 2 in
  let _, sym = sym_source g in
  let degs = eval (Qb.degrees sym) in
  Wdata.iter (fun (v, d) w ->
      Alcotest.(check int) "degree value" (Graph.degree g v) d;
      check_close "degree weight 0.5" 0.5 w)
    degs;
  Alcotest.(check int) "one record per vertex" (Graph.n g) (Wdata.support_size degs)

let test_degree_ccdf_matches_graph () =
  let g = clustered_graph 3 in
  let _, sym = sym_source g in
  let ccdf = eval (Qb.degree_ccdf sym) in
  let expect = Graph.degree_ccdf g in
  Array.iteri
    (fun i c -> check_close (Printf.sprintf "ccdf[%d]" i) (float_of_int c) (Wdata.weight ccdf i))
    expect;
  check_close "beyond dmax" 0.0 (Wdata.weight ccdf (Graph.dmax g))

let test_degree_sequence_matches_graph () =
  let g = clustered_graph 4 in
  let _, sym = sym_source g in
  let seq = eval (Qb.degree_sequence sym) in
  let expect = Graph.degree_sequence_desc g in
  Array.iteri
    (fun j d -> check_close (Printf.sprintf "seq[%d]" j) (float_of_int d) (Wdata.weight seq j))
    expect

let test_nodes_and_counts () =
  let g = random_graph 5 in
  let _, sym = sym_source g in
  let nodes = eval (Qb.nodes sym) in
  Wdata.iter (fun _ w -> check_close "node weight" 0.5 w) nodes;
  Alcotest.(check int) "all vertices" (Graph.n g) (Wdata.support_size nodes);
  check_close "node count |V|/2"
    (float_of_int (Graph.n g) /. 2.0)
    (Wdata.weight (eval (Qb.node_count sym)) ());
  check_close "edge count 2m"
    (float_of_int (2 * Graph.m g))
    (Wdata.weight (eval (Qb.edge_count sym)) ())

(* ---- paths and JDD ---- *)

let test_paths_weights () =
  let g = random_graph 6 in
  let _, sym = sym_source g in
  let paths = eval (Qb.paths2 sym) in
  Wdata.iter
    (fun (a, b, c) w ->
      Alcotest.(check bool) "real path" true (Graph.has_edge g a b && Graph.has_edge g b c);
      Alcotest.(check bool) "no 2-cycles" true (a <> c);
      check_close "1/(2db)" (1.0 /. (2.0 *. float_of_int (Graph.degree g b))) w)
    paths;
  let expected_count =
    Array.fold_left (fun acc d -> acc + (d * (d - 1))) 0 (Graph.degrees g)
  in
  Alcotest.(check int) "path count d(d-1)" expected_count (Wdata.support_size paths)

let test_jdd_weights () =
  let g = clustered_graph 7 in
  let _, sym = sym_source g in
  let jdd = eval (Qb.jdd sym) in
  (* Expected: every directed edge (a,b) lands weight 1/(2+2da+2db) on
     record (da, db). *)
  let expected =
    Wdata.of_list
      (List.map
         (fun (a, b) ->
           let da = Graph.degree g a and db = Graph.degree g b in
           ((da, db), Queries.jdd_pair_weight (da, db)))
         (Graph.directed_edges g))
  in
  check_wdata ~tol:1e-6
    (fun fmt (x, y) -> Format.fprintf fmt "(%d,%d)" x y)
    "jdd weights" expected jdd

(* ---- triangles ---- *)

let test_tbd_weights () =
  let g = clustered_graph 8 in
  let _, sym = sym_source g in
  let tbd = eval (Qb.tbd sym) in
  let expected =
    Wdata.of_list
      (List.map
         (fun (triple, count) ->
           (triple, float_of_int count *. Queries.tbd_triple_weight triple))
         (Graph.triangles_by_degree g))
  in
  check_wdata ~tol:1e-6
    (fun fmt (x, y, z) -> Format.fprintf fmt "(%d,%d,%d)" x y z)
    "tbd = count * 3/(x²+y²+z²)" expected tbd

let test_tbd_bucketing () =
  let g = clustered_graph 9 in
  let _, sym = sym_source g in
  let k = 4 in
  let tbd = eval (Qb.tbd ~bucket:k sym) in
  (* Bucketed records must carry the same total weight, redistributed onto
     floor(d/k) triples. *)
  let plain = eval (Qb.tbd sym) in
  check_close ~tol:1e-6 "total weight preserved" (Wdata.total plain) (Wdata.total tbd);
  Wdata.iter
    (fun (x, y, z) _ ->
      Alcotest.(check bool) "bucketed degrees small" true
        (x <= Graph.dmax g / k && y <= Graph.dmax g / k && z <= Graph.dmax g / k))
    tbd

let test_tbi_weight () =
  let g = clustered_graph 10 in
  let _, sym = sym_source g in
  let tbi = eval (Qb.tbi sym) in
  Alcotest.(check int) "single record" 1 (Wdata.support_size tbi);
  check_close ~tol:1e-6 "Eq. 8" (Graph.tbi_signal g) (Wdata.weight tbi ());
  (* Triangle-free graph: zero signal. *)
  let _, sym5 = sym_source (Graph.of_edges [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 0) ]) in
  check_close "C5 signal" 0.0 (Wdata.weight (eval (Qb.tbi sym5)) ())

(* ---- squares ---- *)

(* Brute-force 4-cycle enumeration with cycle order, for Eq. (6). *)
let squares_brute g =
  let n = Graph.n g in
  let acc = ref [] in
  for a = 0 to n - 1 do
    for b = a + 1 to n - 1 do
      if Graph.has_edge g a b then
        for c = 0 to n - 1 do
          if c <> a && c <> b && Graph.has_edge g b c then
            for d = 0 to n - 1 do
              (* Canonical form: a = min vertex; b < d are its two cycle
                 neighbors; c is opposite. *)
              if d <> a && d <> b && d <> c && Graph.has_edge g c d
                 && Graph.has_edge g d a && a < c && b < d
              then acc := (a, b, c, d) :: !acc
            done
        done
    done
  done;
  !acc

let test_sbd_weights () =
  let g = Gen.erdos_renyi ~n:14 ~m:30 (Prng.create 11) in
  let _, sym = sym_source g in
  let sbd = eval (Qb.sbd sym) in
  (* Each square a-b-c-d contributes through its 8 traversals; traversals
     starting at opposite corners share the Eq. (6) value. *)
  let expected = Hashtbl.create 16 in
  List.iter
    (fun (a, b, c, d) ->
      let da = Graph.degree g a and db = Graph.degree g b in
      let dc = Graph.degree g c and dd = Graph.degree g d in
      let key =
        match List.sort compare [ da; db; dc; dd ] with
        | [ w; x; y; z ] -> (w, x, y, z)
        | _ -> assert false
      in
      let w =
        (* Traversals a-b-c-d / c-d-a-b / reversals: eq6(da,db,dc,dd);
           traversals b-c-d-a / d-a-b-c / reversals: eq6(db,dc,dd,da). *)
        (4.0 *. Queries.sbd_cycle_weight da db dc dd)
        +. (4.0 *. Queries.sbd_cycle_weight db dc dd da)
      in
      Hashtbl.replace expected key (w +. Option.value ~default:0.0 (Hashtbl.find_opt expected key)))
    (squares_brute g);
  let expected = Wdata.of_list (Hashtbl.fold (fun k w acc -> (k, w) :: acc) expected []) in
  check_wdata ~tol:1e-6
    (fun fmt (w, x, y, z) -> Format.fprintf fmt "(%d,%d,%d,%d)" w x y z)
    "sbd per Eq. 6" expected sbd

let test_degree_histogram () =
  let g = clustered_graph 15 in
  let _, sym = sym_source g in
  let hist = eval (Qb.degree_histogram sym) in
  let expect = Hashtbl.create 16 in
  Array.iter
    (fun d -> Hashtbl.replace expect d (1 + Option.value ~default:0 (Hashtbl.find_opt expect d)))
    (Graph.degrees g);
  Hashtbl.iter
    (fun d c ->
      check_close (Printf.sprintf "hist[%d]" d) (0.5 *. float_of_int c) (Wdata.weight hist d))
    expect

let test_paths3_structure () =
  let g = random_graph 16 in
  let _, sym = sym_source g in
  let p3 = eval (Qb.paths3 sym) in
  Wdata.iter
    (fun (a, b, c, d) w ->
      Alcotest.(check bool) "walk edges" true
        (Graph.has_edge g a b && Graph.has_edge g b c && Graph.has_edge g c d);
      Alcotest.(check bool) "vertex constraints" true (a <> c && b <> d && a <> d);
      Alcotest.(check bool) "positive weight" true (w > 0.0))
    p3

let test_sbi_signal () =
  (* Square-free graphs give exactly zero; C4 gives a positive count. *)
  let zero_graphs =
    [ Graph.of_edges [ (0, 1); (1, 2); (0, 2) ] (* K3 *);
      Graph.of_edges [ (0, 1); (0, 2); (0, 3); (0, 4) ] (* star *) ]
  in
  List.iter
    (fun g ->
      let _, sym = sym_source g in
      check_close "square-free: zero sbi" 0.0 (Wdata.weight (eval (Qb.sbi sym)) ()))
    zero_graphs;
  let _, sym4 = sym_source (Graph.of_edges [ (0, 1); (1, 2); (2, 3); (3, 0) ]) in
  Alcotest.(check bool) "C4: positive sbi" true (Wdata.weight (eval (Qb.sbi sym4)) () > 0.1)

let test_sbi_separates_lattice_from_random () =
  (* A lattice is square-rich; rewiring it destroys squares; SbI must see
     the difference (that is its whole purpose). *)
  let k = 6 in
  let idx i j = (i * k) + j in
  let edges = ref [] in
  for i = 0 to k - 1 do
    for j = 0 to k - 1 do
      if i + 1 < k then edges := (idx i j, idx (i + 1) j) :: !edges;
      if j + 1 < k then edges := (idx i j, idx i (j + 1)) :: !edges
    done
  done;
  let lattice = Graph.of_edges !edges in
  let rand = Wpinq_graph.Rewire.randomize lattice (Prng.create 17) in
  let signal g =
    let _, sym = sym_source g in
    Wdata.weight (eval (Qb.sbi sym)) ()
  in
  Alcotest.(check bool)
    (Printf.sprintf "lattice %.2f >> random %.2f" (signal lattice) (signal rand))
    true
    (signal lattice > 4.0 *. signal rand);
  Alcotest.(check int) "lattice squares" ((k - 1) * (k - 1)) (Graph.square_count lattice)

(* ---- Batch/Flow agreement on every query ---- *)

let test_batch_flow_agreement () =
  let g = Gen.erdos_renyi ~n:16 ~m:36 (Prng.create 12) in
  let records = Graph.directed_edges g in
  let budget = Budget.create ~name:"edges" 1e9 in
  let bsym = Batch.source_records ~budget records in
  let engine = Dataflow.Engine.create () in
  let handle, fsym = Flow.input engine in
  let s_tbd = Dataflow.Sink.attach (Flow.node (Qf.tbd fsym)) in
  let s_sbd = Dataflow.Sink.attach (Flow.node (Qf.sbd fsym)) in
  let s_tbi = Dataflow.Sink.attach (Flow.node (Qf.tbi fsym)) in
  let s_jdd = Dataflow.Sink.attach (Flow.node (Qf.jdd fsym)) in
  let s_seq = Dataflow.Sink.attach (Flow.node (Qf.degree_sequence fsym)) in
  let s_sbi = Dataflow.Sink.attach (Flow.node (Qf.sbi fsym)) in
  let s_hist = Dataflow.Sink.attach (Flow.node (Qf.degree_histogram fsym)) in
  Flow.feed handle (List.map (fun e -> (e, 1.0)) records);
  let pp3 fmt (x, y, z) = Format.fprintf fmt "(%d,%d,%d)" x y z in
  let pp4 fmt (w, x, y, z) = Format.fprintf fmt "(%d,%d,%d,%d)" w x y z in
  let pp2 fmt (x, y) = Format.fprintf fmt "(%d,%d)" x y in
  check_wdata ~tol:1e-6 pp3 "tbd batch=flow" (eval (Qb.tbd bsym)) (Dataflow.Sink.current s_tbd);
  check_wdata ~tol:1e-6 pp4 "sbd batch=flow" (eval (Qb.sbd bsym)) (Dataflow.Sink.current s_sbd);
  check_wdata ~tol:1e-6 Fmt.nop "tbi batch=flow" (eval (Qb.tbi bsym)) (Dataflow.Sink.current s_tbi);
  check_wdata ~tol:1e-6 pp2 "jdd batch=flow" (eval (Qb.jdd bsym)) (Dataflow.Sink.current s_jdd);
  check_wdata ~tol:1e-6 pp_int "degseq batch=flow" (eval (Qb.degree_sequence bsym))
    (Dataflow.Sink.current s_seq);
  check_wdata ~tol:1e-6 Fmt.nop "sbi batch=flow" (eval (Qb.sbi bsym))
    (Dataflow.Sink.current s_sbi);
  check_wdata ~tol:1e-6 pp_int "hist batch=flow" (eval (Qb.degree_histogram bsym))
    (Dataflow.Sink.current s_hist)

(* Incremental maintenance under edge swaps stays exact. *)
let test_flow_queries_under_swaps () =
  let g = Gen.erdos_renyi ~n:16 ~m:36 (Prng.create 13) in
  let engine = Dataflow.Engine.create () in
  let handle, fsym = Flow.input engine in
  let s_tbi = Dataflow.Sink.attach (Flow.node (Qf.tbi fsym)) in
  let s_tbd = Dataflow.Sink.attach (Flow.node (Qf.tbd fsym)) in
  Flow.feed handle (List.map (fun e -> (e, 1.0)) (Graph.directed_edges g));
  let mg = Graph.Mutable.of_graph g in
  let rng = Prng.create 14 in
  for _ = 1 to 60 do
    match Graph.Mutable.propose_swap mg rng with
    | None -> ()
    | Some s ->
        Graph.Mutable.apply mg s;
        Flow.feed handle (Graph.Mutable.delta s)
  done;
  let now = Graph.Mutable.to_graph mg in
  check_close ~tol:1e-6 "tbi tracks swaps" (Graph.tbi_signal now)
    (Dataflow.Sink.weight s_tbi ());
  let expected_tbd =
    Wdata.of_list
      (List.map
         (fun (t, c) -> (t, float_of_int c *. Queries.tbd_triple_weight t))
         (Graph.triangles_by_degree now))
  in
  check_wdata ~tol:1e-6
    (fun fmt (x, y, z) -> Format.fprintf fmt "(%d,%d,%d)" x y z)
    "tbd tracks swaps" expected_tbd
    (Dataflow.Sink.current s_tbd)

let suite =
  [
    Alcotest.test_case "privacy costs (use counts)" `Quick test_privacy_costs;
    Alcotest.test_case "degrees" `Quick test_degrees_weights;
    Alcotest.test_case "degree ccdf" `Quick test_degree_ccdf_matches_graph;
    Alcotest.test_case "degree sequence" `Quick test_degree_sequence_matches_graph;
    Alcotest.test_case "nodes / counts" `Quick test_nodes_and_counts;
    Alcotest.test_case "path weights" `Quick test_paths_weights;
    Alcotest.test_case "jdd weights (Eq. 3)" `Quick test_jdd_weights;
    Alcotest.test_case "tbd weights (Eq. 4)" `Quick test_tbd_weights;
    Alcotest.test_case "tbd bucketing" `Quick test_tbd_bucketing;
    Alcotest.test_case "tbi weight (Eq. 8)" `Quick test_tbi_weight;
    Alcotest.test_case "sbd weights (Eq. 6)" `Quick test_sbd_weights;
    Alcotest.test_case "degree histogram" `Quick test_degree_histogram;
    Alcotest.test_case "paths3 structure" `Quick test_paths3_structure;
    Alcotest.test_case "sbi signal" `Quick test_sbi_signal;
    Alcotest.test_case "sbi lattice vs random" `Quick test_sbi_separates_lattice_from_random;
    Alcotest.test_case "batch = flow on all queries" `Quick test_batch_flow_agreement;
    Alcotest.test_case "flow queries track swaps" `Quick test_flow_queries_under_swaps;
  ]
