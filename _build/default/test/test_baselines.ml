(* The PINQ and smooth-sensitivity comparators. *)

module Pinq = Wpinq_baselines.Pinq
module Smooth = Wpinq_baselines.Smooth
module Graph = Wpinq_graph.Graph
module Gen = Wpinq_graph.Gen
module Budget = Wpinq_core.Budget
module Prng = Wpinq_prng.Prng
open Helpers

let contents c = List.sort compare (Pinq.unsafe_contents c)

let test_pinq_multiset_ops () =
  let b = Budget.create ~name:"p" 1e9 in
  let src = Pinq.source ~budget:b [ 1; 2; 2; 3; 3; 3 ] in
  Alcotest.(check (list (pair int int))) "source counts" [ (1, 1); (2, 2); (3, 3) ]
    (contents src);
  Alcotest.(check (list (pair int int))) "select accumulates" [ (0, 2); (1, 4) ]
    (contents (Pinq.select (fun x -> x mod 2) src));
  Alcotest.(check (list (pair int int))) "where" [ (2, 2) ]
    (contents (Pinq.where (fun x -> x = 2) src));
  Alcotest.(check (list (pair int int))) "distinct" [ (1, 1); (2, 1); (3, 1) ]
    (contents (Pinq.distinct src));
  Alcotest.(check (list (pair int int))) "concat" [ (1, 2); (2, 4); (3, 6) ]
    (contents (Pinq.concat src src));
  let other = Pinq.source ~budget:b [ 2; 3; 3; 3; 3 ] in
  Alcotest.(check (list (pair int int))) "intersect" [ (2, 1); (3, 3) ]
    (contents (Pinq.intersect src other))

let test_pinq_group_by () =
  let b = Budget.create ~name:"p" 1e9 in
  let src = Pinq.source ~budget:b [ 1; 2; 3; 4 ] in
  let grouped = Pinq.group_by ~key:(fun x -> x mod 2) ~reduce:List.length src in
  Alcotest.(check (list (pair (pair int int) int))) "group sizes"
    [ ((0, 2), 1); ((1, 2), 1) ]
    (List.sort compare (Pinq.unsafe_contents grouped))

let test_pinq_guarded_join () =
  let b = Budget.create ~name:"p" 1e9 in
  (* Keys: 0 has one record on each side -> emitted; 1 has two on the left
     -> suppressed; 2 has multiplicity 2 on the right -> suppressed. *)
  let left = Pinq.source ~budget:b [ (0, "a"); (1, "b"); (1, "c"); (2, "d") ] in
  let right = Pinq.source ~budget:b [ (0, "x"); (1, "y"); (2, "z"); (2, "z") ] in
  let j = Pinq.join ~kl:fst ~kr:fst ~reduce:(fun (_, a) (_, x) -> a ^ x) left right in
  Alcotest.(check (list (pair string int))) "only unique matches" [ ("ax", 1) ]
    (List.sort compare (Pinq.unsafe_contents j))

let test_pinq_join_kills_paths () =
  (* The motivating failure: on any graph with a degree>=2 vertex, PINQ's
     join of edges with edges yields no length-two paths through it. *)
  let g = Gen.clustered ~n:60 ~community:8 ~p_in:0.7 ~extra:30 (Prng.create 1) in
  let b = Budget.create ~name:"p" 1e9 in
  let edges = Pinq.source ~budget:b (Graph.directed_edges g) in
  let paths = Pinq.join ~kl:snd ~kr:fst ~reduce:(fun (a, b) (_, c) -> (a, b, c)) edges edges in
  (* Only degree-1 middle vertices have unique matches, and those yield the
     degenerate back-and-forth walk (a, b, a) - no triangle raw material. *)
  List.iter
    (fun ((a, b, c), _) ->
      Alcotest.(check int) "degree-1 middle" 1 (Graph.degree g b);
      Alcotest.(check int) "degenerate walk" a c)
    (Pinq.unsafe_contents paths);
  Alcotest.(check bool) "graph does have real paths" true
    (Array.exists (fun d -> d >= 2) (Graph.degrees g))

let test_pinq_stability_accounting () =
  let b = Budget.create ~name:"p" 1e9 in
  let src = Pinq.source ~budget:b [ 1; 2 ] in
  let factor c = match Pinq.stability c with [ (_, n) ] -> n | _ -> -1 in
  Alcotest.(check int) "source" 1 (factor src);
  Alcotest.(check int) "select" 1 (factor (Pinq.select (fun x -> x) src));
  Alcotest.(check int) "group_by doubles" 2
    (factor (Pinq.group_by ~key:(fun x -> x) ~reduce:List.length src));
  Alcotest.(check int) "self-join: 2+2" 4
    (factor (Pinq.join ~kl:(fun x -> x) ~kr:(fun x -> x) ~reduce:(fun x _ -> x) src src));
  (* noisy_count charges stability x epsilon. *)
  let j = Pinq.join ~kl:(fun x -> x) ~kr:(fun x -> x) ~reduce:(fun x _ -> x) src src in
  let _ = Pinq.noisy_count ~rng:(Prng.create 2) ~epsilon:0.25 j 1 in
  check_close "charged 4 x 0.25" 1.0 (Budget.spent b)

let test_pinq_noisy_count_accuracy () =
  let b = Budget.create ~name:"p" 1e12 in
  let src = Pinq.source ~budget:b [ 5; 5; 5; 7 ] in
  let v = Pinq.noisy_count ~rng:(Prng.create 3) ~epsilon:1e9 src 5 in
  check_close ~tol:1e-6 "count of 5" 3.0 v;
  let t = Pinq.noisy_total ~rng:(Prng.create 4) ~epsilon:1e9 src in
  check_close ~tol:1e-6 "total" 4.0 t

(* ---- smooth sensitivity ---- *)

let two_hub v =
  Graph.of_edges (List.concat_map (fun i -> [ (0, i); (1, i) ]) (List.init (v - 2) (fun i -> i + 2)))

let triangle_ring k =
  Graph.of_edges
    (List.concat_map
       (fun i -> [ (3 * i, (3 * i) + 1); ((3 * i) + 1, (3 * i) + 2); (3 * i, (3 * i) + 2) ])
       (List.init k (fun i -> i)))

let test_local_sensitivity () =
  Alcotest.(check int) "K3" 1 (Smooth.local_sensitivity (Graph.of_edges [ (0, 1); (1, 2); (0, 2) ]));
  Alcotest.(check int) "star: leaves share the hub" 1
    (Smooth.local_sensitivity (Graph.of_edges [ (0, 1); (0, 2); (0, 3) ]));
  Alcotest.(check int) "two-hub graph: hubs share v-2" 58
    (Smooth.local_sensitivity (two_hub 60));
  Alcotest.(check int) "triangle ring" 1 (Smooth.local_sensitivity (triangle_ring 10));
  Alcotest.(check int) "empty" 0 (Smooth.local_sensitivity (Graph.of_edges [ (0, 1) ]))

let test_smooth_bound_bracket () =
  (* LS <= S <= n-2 always; and the bound is monotone in LS across our two
     extreme graphs. *)
  let check g =
    let s = Smooth.smooth_bound ~epsilon:0.5 ~delta:1e-6 g in
    let ls = float_of_int (Smooth.local_sensitivity g) in
    Alcotest.(check bool) "S >= LS" true (s >= ls -. 1e-9);
    Alcotest.(check bool) "S <= n-2" true (s <= float_of_int (Graph.n g))
  in
  check (two_hub 60);
  check (triangle_ring 10);
  (* At this epsilon/delta the smoothing horizon is 1/beta = 58 edge flips,
     so the benefit only shows once n - 2 exceeds it: a 300-vertex ring sits
     near 58/e regardless of n, while the two-hub graph pins S at n - 2. *)
  let s_good = Smooth.smooth_bound ~epsilon:0.5 ~delta:1e-6 (triangle_ring 100) in
  let s_bad = Smooth.smooth_bound ~epsilon:0.5 ~delta:1e-6 (two_hub 300) in
  Alcotest.(check bool)
    (Printf.sprintf "ring %.1f far below hub graph %.1f" s_good s_bad)
    true
    (s_good *. 4.0 < s_bad)

let test_smooth_noise_scales () =
  let rng = Prng.create 5 in
  let _, wc = Smooth.worst_case_noisy_triangles ~rng ~epsilon:0.5 (triangle_ring 100) in
  check_close "worst-case scale" (298.0 /. 0.5) wc;
  let _, sm = Smooth.noisy_triangles ~rng ~epsilon:0.5 ~delta:1e-6 (triangle_ring 100) in
  Alcotest.(check bool) "smooth beats worst case on a benign graph" true (sm < wc /. 2.0)

let suite =
  [
    Alcotest.test_case "pinq multiset ops" `Quick test_pinq_multiset_ops;
    Alcotest.test_case "pinq group_by" `Quick test_pinq_group_by;
    Alcotest.test_case "pinq guarded join" `Quick test_pinq_guarded_join;
    Alcotest.test_case "pinq join kills paths" `Quick test_pinq_join_kills_paths;
    Alcotest.test_case "pinq stability accounting" `Quick test_pinq_stability_accounting;
    Alcotest.test_case "pinq noisy count" `Quick test_pinq_noisy_count_accuracy;
    Alcotest.test_case "local sensitivity" `Quick test_local_sensitivity;
    Alcotest.test_case "smooth bound brackets" `Quick test_smooth_bound_bracket;
    Alcotest.test_case "smooth noise scales" `Quick test_smooth_noise_scales;
  ]
