module Prng = Wpinq_prng.Prng

type person = { age : int; income : float; region : string; household : int }

let regions = [ "north"; "south"; "east"; "west"; "coast" ]

(* Region income multipliers: the signal the example's per-region queries
   are supposed to find. *)
let region_scale = function
  | "north" -> 1.0
  | "south" -> 0.8
  | "east" -> 1.1
  | "west" -> 0.9
  | "coast" -> 1.6
  | _ -> 1.0

let generate ~n rng =
  let rng = Prng.copy rng in
  List.init n (fun _ ->
      let age = 18 + Prng.int rng 70 in
      let region = Prng.choose rng (Array.of_list regions) in
      (* Log-normal-ish income rising with age until retirement. *)
      let age_factor = 0.5 +. (float_of_int (min age 60) /. 60.0) in
      let base = 20_000.0 *. exp (0.8 *. Prng.gaussian rng) in
      let income = Float.max 0.0 (base *. age_factor *. region_scale region) in
      let household = 1 + Prng.int rng 6 in
      { age; income; region; household })

let exact_mean_income people =
  List.fold_left (fun acc p -> acc +. p.income) 0.0 people
  /. float_of_int (max 1 (List.length people))

let exact_region_counts people =
  List.map
    (fun r -> (r, List.length (List.filter (fun p -> p.region = r) people)))
    regions
