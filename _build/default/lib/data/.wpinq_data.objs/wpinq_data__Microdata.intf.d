lib/data/microdata.mli: Wpinq_prng
