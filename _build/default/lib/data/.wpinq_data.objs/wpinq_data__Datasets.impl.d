lib/data/datasets.ml: Float Wpinq_graph Wpinq_prng
