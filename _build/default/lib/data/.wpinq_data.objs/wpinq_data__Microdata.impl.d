lib/data/microdata.ml: Array Float List Wpinq_prng
