lib/data/datasets.mli: Wpinq_graph
