(** Synthetic microdata — a census-style population for exercising the
    platform's tabular side (PINQ's home turf): histograms, partitions
    with parallel composition, noisy averages, and the exponential
    mechanism.  Nothing here is graph-shaped; it demonstrates that wPINQ's
    weighted datasets subsume the multiset workloads of its predecessor. *)

type person = {
  age : int;  (** 0 – 99 *)
  income : float;  (** annual, ≥ 0, heavy-tailed *)
  region : string;  (** one of {!regions} *)
  household : int;  (** household size, 1 – 6 *)
}

val regions : string list
(** The fixed region domain (public knowledge). *)

val generate : n:int -> Wpinq_prng.Prng.t -> person list
(** [generate ~n rng] draws a deterministic synthetic population with
    region-dependent income scales and age-dependent income growth, so the
    conditional statistics the example queries estimate actually exist. *)

val exact_mean_income : person list -> float
val exact_region_counts : person list -> (string * int) list
(** Ground truths for tests and examples. *)
