module Graph = Wpinq_graph.Graph
module Gen = Wpinq_graph.Gen
module Rewire = Wpinq_graph.Rewire
module Prng = Wpinq_prng.Prng

type paper_stats = {
  nodes : int;
  edges : int;
  dmax : int;
  triangles : int;
  assortativity : float;
}

type spec = {
  name : string;
  description : string;
  paper : paper_stats;
  paper_random_triangles : int;
  paper_random_assortativity : float;
  generate : float -> Graph.t;
}

let scaled scale n = max 8 (int_of_float (Float.round (scale *. float_of_int n)))

let grqc =
  {
    name = "CA-GrQc";
    description = "general-relativity collaboration network stand-in";
    paper =
      { nodes = 5242; edges = 28980; dmax = 81; triangles = 48260; assortativity = 0.66 };
    paper_random_triangles = 586;
    paper_random_assortativity = 0.00;
    generate =
      (fun scale ->
        Gen.clustered ~n:(scaled scale 1300) ~community:11 ~p_in:0.85
          ~extra:(scaled scale 350) (Prng.create 0x6711));
  }

let hepph =
  {
    name = "CA-HepPh";
    description = "high-energy-physics (phenomenology) collaboration stand-in";
    paper =
      {
        nodes = 12008;
        edges = 237010;
        dmax = 491;
        triangles = 3_358_499;
        assortativity = 0.63;
      };
    paper_random_triangles = 323_867;
    paper_random_assortativity = 0.04;
    generate =
      (fun scale ->
        Gen.clustered ~n:(scaled scale 1000) ~community:22 ~p_in:0.6
          ~extra:(scaled scale 700) (Prng.create 0x4e94));
  }

let hepth =
  {
    name = "CA-HepTh";
    description = "high-energy-physics (theory) collaboration stand-in";
    paper =
      { nodes = 9877; edges = 51971; dmax = 65; triangles = 28339; assortativity = 0.27 };
    paper_random_triangles = 322;
    paper_random_assortativity = 0.05;
    generate =
      (fun scale ->
        Gen.clustered ~n:(scaled scale 1250) ~community:9 ~p_in:0.6
          ~extra:(scaled scale 900) (Prng.create 0x7e77));
  }

let caltech =
  {
    name = "Caltech";
    description = "dense campus social-network stand-in";
    paper =
      { nodes = 769; edges = 33312; dmax = 248; triangles = 119_563; assortativity = -0.06 };
    paper_random_triangles = 50_269;
    paper_random_assortativity = 0.17;
    generate =
      (fun scale ->
        Gen.powerlaw_cluster ~n:(scaled scale 300) ~m:12 ~p_triad:0.95 (Prng.create 0xca17));
  }

let epinions =
  {
    name = "Epinions";
    description = "heavy-tailed trust-network stand-in";
    paper =
      {
        nodes = 75879;
        edges = 1_017_674;
        dmax = 3079;
        triangles = 1_624_481;
        assortativity = -0.01;
      };
    paper_random_triangles = 1_059_864;
    paper_random_assortativity = 0.00;
    generate =
      (fun scale ->
        Gen.powerlaw_cluster ~n:(scaled scale 2200) ~m:6 ~p_triad:0.3 ~alpha:1.08
          (Prng.create 0xe919));
  }

let table1 = [ grqc; hepph; hepth; caltech; epinions ]
let load ?(scale = 1.0) spec = spec.generate scale
let random_counterpart ?(seed = 0x5eed) g = Rewire.randomize g (Prng.create seed)

type ba_spec = {
  label : string;
  beta : float;
  alpha : float;
  paper_dmax : int;
  paper_triangles : int;
  paper_sum_deg_sq : int;
}

let table3 =
  [
    {
      label = "Barabasi 1";
      beta = 0.50;
      alpha = 1.0;
      paper_dmax = 377;
      paper_triangles = 16091;
      paper_sum_deg_sq = 71_859_718;
    };
    {
      label = "Barabasi 2";
      beta = 0.55;
      alpha = 1.1;
      paper_dmax = 475;
      paper_triangles = 18515;
      paper_sum_deg_sq = 77_819_452;
    };
    {
      label = "Barabasi 3";
      beta = 0.60;
      alpha = 1.2;
      paper_dmax = 573;
      paper_triangles = 22209;
      paper_sum_deg_sq = 86_576_336;
    };
    {
      label = "Barabasi 4";
      beta = 0.65;
      alpha = 1.3;
      paper_dmax = 751;
      paper_triangles = 28241;
      paper_sum_deg_sq = 99_641_108;
    };
    {
      label = "Barabasi 5";
      beta = 0.70;
      alpha = 1.4;
      paper_dmax = 965;
      paper_triangles = 35741;
      paper_sum_deg_sq = 119_340_328;
    };
  ]

let ba_graph ?(scale = 1.0) spec =
  Gen.barabasi_albert ~n:(scaled scale 2000) ~m:5 ~alpha:spec.alpha
    (Prng.create (0xba00 + int_of_float (100.0 *. spec.beta)))
