module Wdata = Wpinq_weighted.Wdata
module Ops = Wpinq_weighted.Ops

let near_zero w = Float.abs w < Wdata.epsilon_weight

module Engine = struct
  type t = {
    mutable state_records : int;
    mutable work : int;
    mutable join_fast : int;
    mutable join_full : int;
  }

  let create () = { state_records = 0; work = 0; join_fast = 0; join_full = 0 }
  let state_records t = t.state_records
  let work t = t.work
  let join_fast_updates t = t.join_fast
  let join_full_rescales t = t.join_full
end

type 'a delta = ('a * float) list
type 'a node = { engine : Engine.t; mutable subs : ('a delta -> unit) list }

let engine_of n = n.engine
let make engine = { engine; subs = [] }

(* Subscribers fire in subscription order; propagation is a synchronous
   depth-first walk of the DAG.  Correctness does not depend on the order
   because every stateful operator retires each delta batch against its
   current state. *)
let subscribe n f = n.subs <- n.subs @ [ f ]
let emit n d = if d <> [] then List.iter (fun f -> f d) n.subs

let coalesce d =
  match d with
  | [] -> []
  | [ (_, w) ] -> if near_zero w then [] else d
  | _ ->
      let h = Hashtbl.create (List.length d) in
      List.iter
        (fun (x, w) ->
          match Hashtbl.find_opt h x with
          | None -> Hashtbl.replace h x w
          | Some w0 -> Hashtbl.replace h x (w0 +. w))
        d;
      Hashtbl.fold (fun x w acc -> if near_zero w then acc else (x, w) :: acc) h []

let count_work (engine : Engine.t) d = engine.work <- engine.work + List.length d

(* A mutable weight table whose entry count is reported to the engine's
   state-size statistic. *)
module Wtbl = struct
  type 'a t = { tbl : ('a, float) Hashtbl.t; engine : Engine.t }

  let create engine = { tbl = Hashtbl.create 16; engine }
  let get t x = Option.value ~default:0.0 (Hashtbl.find_opt t.tbl x)

  let set t x w =
    let had = Hashtbl.mem t.tbl x in
    if near_zero w then begin
      if had then begin
        Hashtbl.remove t.tbl x;
        t.engine.state_records <- t.engine.state_records - 1
      end
    end
    else begin
      if not had then t.engine.state_records <- t.engine.state_records + 1;
      Hashtbl.replace t.tbl x w
    end

  (* Adds [dw] and returns the old weight. *)
  let bump t x dw =
    let old = get t x in
    set t x (old +. dw);
    old

  let size t = Hashtbl.length t.tbl
  let to_list t = Hashtbl.fold (fun x w acc -> (x, w) :: acc) t.tbl []
end

module Input = struct
  type 'a t = { node : 'a node; state : 'a Wtbl.t }

  let create engine = { node = make engine; state = Wtbl.create engine }
  let node t = t.node

  let feed t delta =
    let delta = coalesce delta in
    List.iter (fun (x, w) -> ignore (Wtbl.bump t.state x w)) delta;
    emit t.node delta

  let current t = Wdata.of_list (Wtbl.to_list t.state)
end

let select f up =
  let out = make up.engine in
  subscribe up (fun d ->
      count_work up.engine d;
      emit out (List.rev_map (fun (x, w) -> (f x, w)) d));
  out

let where p up =
  let out = make up.engine in
  subscribe up (fun d ->
      count_work up.engine d;
      emit out (List.filter (fun (x, _) -> p x) d));
  out

let select_many f up =
  let out = make up.engine in
  subscribe up (fun d ->
      count_work up.engine d;
      let produced = ref [] in
      List.iter
        (fun (x, w) ->
          let ys = f x in
          let n = List.fold_left (fun acc (_, wy) -> acc +. Float.abs wy) 0.0 ys in
          let scale = w /. Float.max 1.0 n in
          List.iter (fun (y, wy) -> produced := (y, wy *. scale) :: !produced) ys)
        d;
      emit out !produced);
  out

let select_many_list f up = select_many (fun x -> List.map (fun y -> (y, 1.0)) (f x)) up

let same_engine a b =
  if a.engine != b.engine then invalid_arg "Dataflow: nodes belong to different engines";
  a.engine

let concat a b =
  let engine = same_engine a b in
  let out = make engine in
  let pass d =
    count_work engine d;
    emit out d
  in
  subscribe a pass;
  subscribe b pass;
  out

let except a b =
  let engine = same_engine a b in
  let out = make engine in
  subscribe a (fun d ->
      count_work engine d;
      emit out d);
  subscribe b (fun d ->
      count_work engine d;
      emit out (List.rev_map (fun (x, w) -> (x, -.w)) d));
  out

(* Union and Intersect keep both sides' weights per record and emit the
   change to max/min when either side moves. *)
let merge_node fop a b =
  let engine = same_engine a b in
  let out = make engine in
  let wa = Wtbl.create engine and wb = Wtbl.create engine in
  let handle mine other flip d =
    count_work engine d;
    let changes = ref [] in
    List.iter
      (fun (x, dw) ->
        let old_mine = Wtbl.bump mine x dw in
        let v_other = Wtbl.get other x in
        let old_out = if flip then fop v_other old_mine else fop old_mine v_other in
        let new_mine = old_mine +. dw in
        let new_out = if flip then fop v_other new_mine else fop new_mine v_other in
        let diff = new_out -. old_out in
        if not (near_zero diff) then changes := (x, diff) :: !changes)
      d;
    emit out (coalesce !changes)
  in
  subscribe a (handle wa wb false);
  subscribe b (handle wb wa true);
  out

let union a b = merge_node Float.max a b
let intersect a b = merge_node Float.min a b

(* Per-key state of one Join input. *)
type 'r part = { recs : ('r, float) Hashtbl.t; mutable norm : float }

let part_get p x = Option.value ~default:0.0 (Hashtbl.find_opt p.recs x)

let part_set (engine : Engine.t) p x w =
  let had = Hashtbl.mem p.recs x in
  if near_zero w then begin
    if had then begin
      Hashtbl.remove p.recs x;
      engine.state_records <- engine.state_records - 1
    end
  end
  else begin
    if not had then engine.state_records <- engine.state_records + 1;
    Hashtbl.replace p.recs x w
  end

let find_part index k =
  match Hashtbl.find_opt index k with
  | Some p -> p
  | None ->
      let p = { recs = Hashtbl.create 4; norm = 0.0 } in
      Hashtbl.replace index k p;
      p

let group_delta_by_key key d =
  let by_key = Hashtbl.create 16 in
  List.iter
    (fun (x, w) ->
      let k = key x in
      let cur = Option.value ~default:[] (Hashtbl.find_opt by_key k) in
      Hashtbl.replace by_key k ((x, w) :: cur))
    d;
  by_key

let join ~kl ~kr ~reduce a b =
  let engine = same_engine a b in
  let out = make engine in
  let ia : ('k, 'ra part) Hashtbl.t = Hashtbl.create 64 in
  let ib : ('k, 'rb part) Hashtbl.t = Hashtbl.create 64 in
  (* Retire a batch arriving on one side.  [cross changed_rec other_rec]
     orients the output pair correctly for whichever side changed. *)
  let handle mine_index other_index key_of cross d =
    count_work engine d;
    let by_key = group_delta_by_key key_of d in
    let changes = ref [] in
    Hashtbl.iter
      (fun k entries ->
        let mine = find_part mine_index k in
        let other =
          match Hashtbl.find_opt other_index k with
          | Some p -> p
          | None -> { recs = Hashtbl.create 1; norm = 0.0 }
        in
        let net = coalesce entries in
        let norm_change =
          List.fold_left
            (fun acc (x, dw) ->
              let old = part_get mine x in
              acc +. (Float.abs (old +. dw) -. Float.abs old))
            0.0 net
        in
        let denom_old = mine.norm +. other.norm in
        let denom_new = denom_old +. norm_change in
        if Float.abs norm_change < Wdata.epsilon_weight && denom_old > Wdata.epsilon_weight
        then begin
          (* Appendix B optimization: the normalizer is unchanged, so only
             pairs involving changed records move. *)
          engine.join_fast <- engine.join_fast + 1;
          List.iter
            (fun (x, dw) ->
              let old = part_get mine x in
              part_set engine mine x (old +. dw);
              Hashtbl.iter
                (fun y wy -> changes := (cross x y, dw *. wy /. denom_old) :: !changes)
                other.recs)
            net
        end
        else begin
          (* The normalizer moved: every pair under this key is rescaled. *)
          engine.join_full <- engine.join_full + 1;
          if denom_old > Wdata.epsilon_weight then
            Hashtbl.iter
              (fun x wx ->
                Hashtbl.iter
                  (fun y wy -> changes := (cross x y, -.(wx *. wy) /. denom_old) :: !changes)
                  other.recs)
              mine.recs;
          List.iter
            (fun (x, dw) ->
              let old = part_get mine x in
              part_set engine mine x (old +. dw))
            net;
          mine.norm <- mine.norm +. norm_change;
          if denom_new > Wdata.epsilon_weight then
            Hashtbl.iter
              (fun x wx ->
                Hashtbl.iter
                  (fun y wy -> changes := (cross x y, wx *. wy /. denom_new) :: !changes)
                  other.recs)
              mine.recs
        end;
        if Float.abs norm_change < Wdata.epsilon_weight then
          (* Fold the (sub-threshold) norm dust in so norms stay exact. *)
          mine.norm <- mine.norm +. norm_change;
        if Hashtbl.length mine.recs = 0 && Float.abs mine.norm < Wdata.epsilon_weight then
          Hashtbl.remove mine_index k)
      by_key;
    emit out (coalesce !changes)
  in
  subscribe a (handle ia ib kl (fun x y -> reduce x y));
  subscribe b (handle ib ia kr (fun y x -> reduce x y));
  out

let group_by ~key ~reduce up =
  let engine = up.engine in
  let out = make engine in
  let index : ('k, ('a, float) Hashtbl.t) Hashtbl.t = Hashtbl.create 64 in
  let positive_part tbl = Hashtbl.fold (fun x w acc -> if w > 0.0 then (x, w) :: acc else acc) tbl [] in
  let emissions k tbl =
    List.map
      (fun (members, w) -> ((k, reduce members), w))
      (Ops.group_emissions (positive_part tbl))
  in
  subscribe up (fun d ->
      count_work engine d;
      let by_key = group_delta_by_key key d in
      let changes = ref [] in
      Hashtbl.iter
        (fun k entries ->
          let tbl =
            match Hashtbl.find_opt index k with
            | Some t -> t
            | None ->
                let t = Hashtbl.create 4 in
                Hashtbl.replace index k t;
                t
          in
          List.iter (fun (r, w) -> changes := (r, -.w) :: !changes) (emissions k tbl);
          List.iter
            (fun (x, dw) ->
              let old = Option.value ~default:0.0 (Hashtbl.find_opt tbl x) in
              let w = old +. dw in
              let had = Hashtbl.mem tbl x in
              if near_zero w then begin
                if had then begin
                  Hashtbl.remove tbl x;
                  engine.state_records <- engine.state_records - 1
                end
              end
              else begin
                if not had then engine.state_records <- engine.state_records + 1;
                Hashtbl.replace tbl x w
              end)
            (coalesce entries);
          List.iter (fun (r, w) -> changes := (r, w) :: !changes) (emissions k tbl);
          if Hashtbl.length tbl = 0 then Hashtbl.remove index k)
        by_key;
      emit out (coalesce !changes));
  out

let distinct ?(bound = 1.0) up =
  if bound <= 0.0 then invalid_arg "Dataflow.distinct: bound must be positive";
  let engine = up.engine in
  let out = make engine in
  let state = Wtbl.create engine in
  let cap w = Float.max 0.0 (Float.min bound w) in
  subscribe up (fun d ->
      count_work engine d;
      let changes = ref [] in
      List.iter
        (fun (x, dw) ->
          let old = Wtbl.bump state x dw in
          let diff = cap (old +. dw) -. cap old in
          if not (near_zero diff) then changes := (x, diff) :: !changes)
        (coalesce d);
      emit out (coalesce !changes));
  out

let shave f up =
  let engine = up.engine in
  let out = make engine in
  let state = Wtbl.create engine in
  subscribe up (fun d ->
      count_work engine d;
      let changes = ref [] in
      List.iter
        (fun (x, dw) ->
          let old = Wtbl.bump state x dw in
          let w = old +. dw in
          if old > 0.0 then
            List.iter
              (fun (i, wi) -> changes := ((x, i), -.wi) :: !changes)
              (Ops.shave_emissions (f x) old);
          if w > 0.0 then
            List.iter
              (fun (i, wi) -> changes := ((x, i), wi) :: !changes)
              (Ops.shave_emissions (f x) w))
        (coalesce d);
      emit out (coalesce !changes));
  out

let shave_const w up =
  if w <= 0.0 then invalid_arg "Dataflow.shave_const: slab weight must be positive";
  shave (fun _ -> Seq.repeat w) up

module Sink = struct
  type 'a t = {
    state : 'a Wtbl.t;
    mutable callbacks : ('a -> old_weight:float -> new_weight:float -> unit) list;
  }

  let attach node =
    let t = { state = Wtbl.create node.engine; callbacks = [] } in
    subscribe node (fun d ->
        List.iter
          (fun (x, dw) ->
            let old = Wtbl.bump t.state x dw in
            let nw = old +. dw in
            let nw = if near_zero nw then 0.0 else nw in
            List.iter (fun f -> f x ~old_weight:old ~new_weight:nw) t.callbacks)
          d);
    t

  let weight t x = Wtbl.get t.state x
  let support_size t = Wtbl.size t.state
  let current t = Wdata.of_list (Wtbl.to_list t.state)
  let to_list t = Wtbl.to_list t.state
  let on_change t f = t.callbacks <- t.callbacks @ [ f ]
end
