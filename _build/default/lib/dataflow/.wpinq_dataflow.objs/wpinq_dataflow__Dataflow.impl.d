lib/dataflow/dataflow.ml: Float Hashtbl List Option Seq Wpinq_weighted
