lib/dataflow/dataflow.mli: Seq Wpinq_weighted
