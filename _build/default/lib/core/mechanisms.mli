(** Further differentially-private aggregations (paper, Section 2.2).

    [NoisyCount] is the workhorse, but the paper notes that noisy sums,
    noisy averages, and the exponential mechanism all generalize to
    weighted datasets.  Like [NoisyCount], each debits
    [epsilon × (source use-count)] from every source budget before
    releasing anything. *)

val noisy_sum :
  rng:Wpinq_prng.Prng.t ->
  epsilon:float ->
  clamp:float ->
  f:('a -> float) ->
  'a Batch.t ->
  float
(** [noisy_sum ~rng ~epsilon ~clamp ~f c] releases
    [Σ_x A(x) · clip(f x) + Laplace(clamp/epsilon)], where [clip] truncates
    [f] to [[-clamp, clamp]].  A unit of record weight moves the true sum
    by at most [clamp], so the added noise suffices for [epsilon]-DP. *)

val noisy_average :
  rng:Wpinq_prng.Prng.t ->
  epsilon:float ->
  clamp:float ->
  f:('a -> float) ->
  'a Batch.t ->
  float
(** [noisy_average] estimates [Σ A(x)·clip(f x) / Σ A(x)] by splitting
    [epsilon] evenly between a noisy clipped sum and a noisy total weight
    (clamped below at 1), the standard PINQ construction.  Total cost is
    [epsilon] per source use. *)

val exponential :
  rng:Wpinq_prng.Prng.t ->
  epsilon:float ->
  candidates:'r list ->
  score:('r -> 'a Wpinq_weighted.Wdata.t -> float) ->
  'a Batch.t ->
  'r
(** [exponential ~rng ~epsilon ~candidates ~score c] draws a candidate [r]
    with probability proportional to [exp (epsilon · score r A / 2)]
    (McSherry–Talwar).  The guarantee requires each [score r] to be
    1-Lipschitz with respect to [‖·‖] on weighted datasets — e.g. any
    per-candidate weight total, or a stable query's record weight.
    [candidates] must be non-empty. *)
