lib/core/mechanisms.mli: Batch Wpinq_prng Wpinq_weighted
