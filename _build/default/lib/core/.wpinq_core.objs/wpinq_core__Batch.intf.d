lib/core/batch.mli: Budget Lang Measurement Wpinq_prng Wpinq_weighted
