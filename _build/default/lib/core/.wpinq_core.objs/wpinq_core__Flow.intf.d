lib/core/flow.mli: Lang Measurement Wpinq_dataflow Wpinq_weighted
