lib/core/lang.ml: Seq
