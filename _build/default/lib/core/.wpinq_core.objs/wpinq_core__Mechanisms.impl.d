lib/core/mechanisms.ml: Batch Float List Wpinq_prng Wpinq_weighted
