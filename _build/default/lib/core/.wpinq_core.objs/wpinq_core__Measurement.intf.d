lib/core/measurement.mli: Wpinq_prng Wpinq_weighted
