lib/core/flow.ml: Float Hashtbl List Measurement Wpinq_dataflow
