lib/core/budget.mli:
