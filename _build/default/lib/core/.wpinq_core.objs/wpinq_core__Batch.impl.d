lib/core/batch.ml: Budget Lazy List Measurement Wpinq_weighted
