lib/core/measurement.ml: Hashtbl Wpinq_prng Wpinq_weighted
