lib/core/budget.ml: Float List
