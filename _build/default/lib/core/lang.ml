(** The wPINQ transformation language, abstracted over its execution mode.

    Queries are written as functors over {!S} so that the same text runs in
    two ways: once against the protected data through {!Batch} (whole-input
    evaluation, feeding {!Measurement}s and debiting {!Budget}s), and again
    during synthesis through {!Flow} (incremental evaluation against an
    evolving synthetic dataset).  This mirrors the paper's design, where the
    analyst's query both defines the private measurements and, unchanged,
    drives the MCMC scoring engine (Section 4). *)

module type S = sig
  type 'a t
  (** A weighted collection of records of type ['a]. *)

  val select : ('a -> 'b) -> 'a t -> 'b t
  val where : ('a -> bool) -> 'a t -> 'a t
  val select_many : ('a -> ('b * float) list) -> 'a t -> 'b t
  val select_many_list : ('a -> 'b list) -> 'a t -> 'b t
  val concat : 'a t -> 'a t -> 'a t
  val except : 'a t -> 'a t -> 'a t
  val union : 'a t -> 'a t -> 'a t
  val intersect : 'a t -> 'a t -> 'a t

  val join :
    kl:('a -> 'k) -> kr:('b -> 'k) -> reduce:('a -> 'b -> 'c) -> 'a t -> 'b t -> 'c t

  val group_by : key:('a -> 'k) -> reduce:('a list -> 'r) -> 'a t -> ('k * 'r) t
  val distinct : ?bound:float -> 'a t -> 'a t
  val shave : ('a -> float Seq.t) -> 'a t -> ('a * int) t
  val shave_const : float -> 'a t -> ('a * int) t
end
