type t = {
  name : string;
  total : float; (* for children: capacity is dynamic; see [remaining] *)
  mutable spent : float;
  mutable log : (string * float) list;
  kind : kind;
}

and kind = Root | Child of group
and group = { parent : t; mutable max_spent : float }

exception Exhausted of { name : string; requested : float; remaining : float }

let create ~name total =
  if total < 0.0 then invalid_arg "Budget.create: negative budget";
  { name; total; spent = 0.0; log = []; kind = Root }

let name t = t.name

(* Tolerate float rounding when a sequence of charges sums to the total. *)
let slack = 1e-9

let rec remaining t =
  match t.kind with
  | Root -> t.total -. t.spent
  | Child g ->
      (* The child may reuse the headroom other siblings already paid for
         (up to the group maximum), plus whatever the parent still has. *)
      remaining g.parent +. g.max_spent -. t.spent

let total t = match t.kind with Root -> t.total | Child _ -> t.spent +. remaining t
let spent t = t.spent

let rec charge ?(label = "noisy_count") t eps =
  if eps < 0.0 then invalid_arg "Budget.charge: negative epsilon";
  (match t.kind with
  | Root ->
      if eps > t.total -. t.spent +. slack then
        raise (Exhausted { name = t.name; requested = eps; remaining = t.total -. t.spent })
  | Child g ->
      (* Parallel composition: only the excess over the group's maximum
         reaches the parent.  The parent charge happens first so a parent
         Exhausted leaves this child untouched. *)
      let excess = Float.max 0.0 (t.spent +. eps -. g.max_spent) in
      if excess > 0.0 then charge ~label:(t.name ^ "/" ^ label) g.parent excess);
  t.spent <- t.spent +. eps;
  (match t.kind with
  | Root -> ()
  | Child g -> g.max_spent <- Float.max g.max_spent t.spent);
  t.log <- (label, eps) :: t.log

let log t = List.rev t.log
let parallel_group parent = { parent; max_spent = 0.0 }

let parallel_child g ~name =
  { name; total = 0.0; spent = 0.0; log = []; kind = Child g }
