module Wdata = Wpinq_weighted.Wdata
module Prng = Wpinq_prng.Prng

type 'a t = {
  epsilon : float;
  rng : Prng.t; (* private stream for lazily-drawn records *)
  values : ('a, float) Hashtbl.t;
}

let create ~rng ~epsilon ~true_data =
  if epsilon <= 0.0 then invalid_arg "Measurement.create: epsilon must be positive";
  let rng = Prng.split rng in
  let values = Hashtbl.create (max 16 (Wdata.support_size true_data)) in
  Wdata.iter
    (fun x w -> Hashtbl.replace values x (w +. Prng.laplace rng ~scale:(1.0 /. epsilon)))
    true_data;
  { epsilon; rng; values }

let epsilon t = t.epsilon

let value t x =
  match Hashtbl.find_opt t.values x with
  | Some v -> v
  | None ->
      let v = Prng.laplace t.rng ~scale:(1.0 /. t.epsilon) in
      Hashtbl.replace t.values x v;
      v

let observed t = Hashtbl.fold (fun x v acc -> (x, v) :: acc) t.values []
let observed_size t = Hashtbl.length t.values
