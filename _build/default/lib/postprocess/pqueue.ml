type 'a t = { mutable heap : (float * 'a) array; mutable len : int }

let create () = { heap = [||]; len = 0 }
let is_empty q = q.len = 0
let size q = q.len

let grow q =
  let cap = Array.length q.heap in
  if q.len >= cap then begin
    let bigger = Array.make (max 16 (2 * cap)) q.heap.(0) in
    Array.blit q.heap 0 bigger 0 q.len;
    q.heap <- bigger
  end

let push q prio payload =
  if Array.length q.heap = 0 then q.heap <- Array.make 16 (prio, payload);
  grow q;
  q.heap.(q.len) <- (prio, payload);
  q.len <- q.len + 1;
  (* Sift up. *)
  let i = ref (q.len - 1) in
  while
    !i > 0
    &&
    let parent = (!i - 1) / 2 in
    fst q.heap.(parent) > fst q.heap.(!i)
  do
    let parent = (!i - 1) / 2 in
    let tmp = q.heap.(parent) in
    q.heap.(parent) <- q.heap.(!i);
    q.heap.(!i) <- tmp;
    i := parent
  done

let pop q =
  if q.len = 0 then None
  else begin
    let top = q.heap.(0) in
    q.len <- q.len - 1;
    q.heap.(0) <- q.heap.(q.len);
    (* Sift down. *)
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < q.len && fst q.heap.(l) < fst q.heap.(!smallest) then smallest := l;
      if r < q.len && fst q.heap.(r) < fst q.heap.(!smallest) then smallest := r;
      if !smallest = !i then continue := false
      else begin
        let tmp = q.heap.(!smallest) in
        q.heap.(!smallest) <- q.heap.(!i);
        q.heap.(!i) <- tmp;
        i := !smallest
      end
    done;
    Some top
  end
