(** Isotonic regression by pool-adjacent-violators (PAVA).

    Hay et al.'s degree-sequence post-processing (paper, Section 3.1)
    projects the noisy sequence onto the cone of monotone sequences,
    filtering most of the Laplace noise.  This is the L2 projection:
    the unique monotone sequence minimizing [Σ wᵢ (fitᵢ − yᵢ)²]. *)

val non_decreasing : ?weights:float array -> float array -> float array
(** [non_decreasing y] is the L2-optimal non-decreasing fit to [y]. *)

val non_increasing : ?weights:float array -> float array -> float array
(** [non_increasing y] is the L2-optimal non-increasing fit to [y] — the
    shape of a degree sequence sorted descending. *)
