let fit_cost ~v ~h =
  let xmax = Array.length v and ymax = Array.length h in
  (* Node (x, y) encoded as x * (ymax + 1) + y. *)
  let encode x y = (x * (ymax + 1)) + y in
  let dist : (int, float) Hashtbl.t = Hashtbl.create 1024 in
  let parent : (int, int) Hashtbl.t = Hashtbl.create 1024 in
  let queue = Pqueue.create () in
  let start = encode 0 ymax and goal = encode xmax 0 in
  Hashtbl.replace dist start 0.0;
  Pqueue.push queue 0.0 start;
  let settled = Hashtbl.create 1024 in
  let rec search () =
    match Pqueue.pop queue with
    | None -> failwith "Gridpath.fit: goal unreachable"
    | Some (d, node) ->
        if Hashtbl.mem settled node then search ()
        else begin
          Hashtbl.replace settled node ();
          if node = goal then d
          else begin
            let x = node / (ymax + 1) and y = node mod (ymax + 1) in
            let relax nx ny cost =
              let next = encode nx ny in
              if not (Hashtbl.mem settled next) then begin
                let nd = d +. cost in
                match Hashtbl.find_opt dist next with
                | Some old when old <= nd -> ()
                | _ ->
                    Hashtbl.replace dist next nd;
                    Hashtbl.replace parent next node;
                    Pqueue.push queue nd next
              end
            in
            if x < xmax then relax (x + 1) y (Float.abs (v.(x) -. float_of_int y));
            if y > 0 then relax x (y - 1) (Float.abs (h.(y - 1) -. float_of_int x));
            search ()
          end
        end
  in
  let cost = search () in
  (* Walk the parent chain; a horizontal step leaving x fixes degree y. *)
  let seq = Array.make xmax 0 in
  let rec backtrack node =
    match Hashtbl.find_opt parent node with
    | None -> ()
    | Some prev ->
        let x = node / (ymax + 1) and y = node mod (ymax + 1) in
        let px = prev / (ymax + 1) and py = prev mod (ymax + 1) in
        if px = x - 1 && py = y then seq.(px) <- y;
        backtrack prev
  in
  backtrack goal;
  (seq, cost)

let fit ~v ~h = fst (fit_cost ~v ~h)
