lib/postprocess/pqueue.mli:
