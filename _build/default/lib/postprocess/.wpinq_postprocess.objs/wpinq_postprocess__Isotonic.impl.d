lib/postprocess/isotonic.ml: Array
