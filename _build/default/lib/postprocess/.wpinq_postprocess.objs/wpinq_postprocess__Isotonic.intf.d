lib/postprocess/isotonic.mli:
