lib/postprocess/pqueue.ml: Array
