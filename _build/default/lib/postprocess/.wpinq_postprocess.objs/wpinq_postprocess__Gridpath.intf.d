lib/postprocess/gridpath.mli:
