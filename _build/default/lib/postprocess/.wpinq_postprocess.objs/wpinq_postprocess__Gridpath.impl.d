lib/postprocess/gridpath.ml: Array Float Hashtbl Pqueue
