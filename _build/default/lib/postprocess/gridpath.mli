(** Joint post-processing of the noisy degree sequence and noisy degree
    CCDF (paper, Section 3.1).

    A non-increasing degree sequence is a monotone staircase path on the
    integer grid from [(0, ymax)] down-and-right to [(xmax, 0)].  Given the
    noisy "vertical" degree-sequence measurements [v] (indexed by position)
    and the noisy "horizontal" CCDF measurements [h] (indexed by degree),
    the best consistent sequence minimizes

      [Σ_{(x,y) ∈ path} |v.(x) − y| + |h.(y) − x|]

    which is exactly a shortest path where a rightward step at height [y]
    costs [|v.(x) − y|] (committing position [x] to degree [y]) and a
    downward step at position [x] costs [|h.(y) − x|].  The search is a
    lazy Dijkstra: nodes are materialized on demand, so only the low-cost
    trough near the data is ever visited. *)

val fit : v:float array -> h:float array -> int array
(** [fit ~v ~h] returns the fitted non-increasing degree sequence:
    [length v] entries, each in [0 .. length h].  [v.(x)] is the noisy
    count for sequence position [x]; [h.(y)] the noisy count of vertices
    with degree > [y]. *)

val fit_cost : v:float array -> h:float array -> int array * float
(** Like {!fit}, also returning the optimal path cost (for tests and
    diagnostics). *)
