(** Minimal binary min-heap priority queue (keys are floats), used by the
    lazy Dijkstra search of {!Gridpath}. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int

val push : 'a t -> float -> 'a -> unit
(** [push q priority payload] inserts an element. *)

val pop : 'a t -> (float * 'a) option
(** Removes and returns the minimum-priority element. *)
