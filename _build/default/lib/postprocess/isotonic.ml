(* Pool adjacent violators: maintain a stack of blocks (weighted means);
   when a new value breaks monotonicity, merge blocks until restored.  Each
   element is merged at most once, so the whole fit is O(n). *)

let non_decreasing ?weights y =
  let n = Array.length y in
  let w = match weights with Some w -> w | None -> Array.make n 1.0 in
  if Array.length w <> n then invalid_arg "Isotonic: weights length mismatch";
  let mean = Array.make n 0.0 in
  let weight = Array.make n 0.0 in
  let count = Array.make n 0 in
  let top = ref 0 in
  for i = 0 to n - 1 do
    mean.(!top) <- y.(i);
    weight.(!top) <- w.(i);
    count.(!top) <- 1;
    incr top;
    while !top > 1 && mean.(!top - 2) > mean.(!top - 1) do
      let wa = weight.(!top - 2) and wb = weight.(!top - 1) in
      mean.(!top - 2) <- ((mean.(!top - 2) *. wa) +. (mean.(!top - 1) *. wb)) /. (wa +. wb);
      weight.(!top - 2) <- wa +. wb;
      count.(!top - 2) <- count.(!top - 2) + count.(!top - 1);
      decr top
    done
  done;
  let out = Array.make n 0.0 in
  let pos = ref 0 in
  for b = 0 to !top - 1 do
    for _ = 1 to count.(b) do
      out.(!pos) <- mean.(b);
      incr pos
    done
  done;
  out

let non_increasing ?weights y =
  let flipped = Array.map (fun v -> -.v) y in
  Array.map (fun v -> -.v) (non_decreasing ?weights flipped)
