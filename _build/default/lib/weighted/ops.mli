(** Batch (reference) semantics of wPINQ's stable transformations
    (paper, Sections 2.3–2.8).

    A transformation [T] is {e stable} when
    [‖T A − T A'‖ ≤ ‖A − A'‖] for all datasets [A, A'] (binary
    transformations bound the output change by the sum of the input
    changes).  Stability is what lets a single differentially-private
    aggregation of a pipeline's output protect the pipeline's input
    (Theorem 1): the operators below each rescale record weights just enough
    to absorb worst-case input changes, rather than forcing the aggregation
    to add worst-case noise.

    These implementations compute whole outputs from whole inputs.  They are
    the executable specification against which the incremental engine
    ({!module:Wpinq_dataflow}) is property-tested, and they are used directly
    wherever a query is evaluated only once. *)

val select : ('a -> 'b) -> 'a Wdata.t -> 'b Wdata.t
(** [select f a] maps every record through [f], accumulating the weights of
    records that collide: [Select(A,f)(y) = Σ_{x : f x = y} A x]. *)

val where : ('a -> bool) -> 'a Wdata.t -> 'a Wdata.t
(** [where p a] keeps records satisfying [p] with their weights. *)

val select_many : ('a -> ('b * float) list) -> 'a Wdata.t -> 'b Wdata.t
(** [select_many f a] maps each record [x] to the weighted dataset [f x],
    rescaled to at most unit norm and then by [A x]:
    [Σ_x A x · f x / max 1 ‖f x‖].  The per-record rescaling — by the norm
    each record {e actually} produces, not a worst-case bound — is what
    makes the one-to-many mapping stable. *)

val select_many_list : ('a -> 'b list) -> 'a Wdata.t -> 'b Wdata.t
(** [select_many_list f] is {!select_many} with every produced record given
    weight [1.0] (the common LINQ-style usage). *)

val group_by : key:('a -> 'k) -> reduce:('a list -> 'r) -> 'a Wdata.t -> ('k * 'r) Wdata.t
(** [group_by ~key ~reduce a] groups records by [key] and applies [reduce]
    to each group.  Within the part [A_k], records [x₀, x₁, ...] are ordered
    by non-increasing weight and, for each prefix, the record
    [(k, reduce [x₀; ...; x_i])] is emitted with weight
    [(A_k x_i − A_k x_{i+1}) / 2] (zero beyond the last record).  When all
    input records share one weight [w] — the common case — only the full
    group survives, with weight [w / 2].  This halving is what makes the
    grouping stable (paper, Section 2.5 and Appendix A). *)

val union : 'a Wdata.t -> 'a Wdata.t -> 'a Wdata.t
(** Record-wise maximum of weights. *)

val intersect : 'a Wdata.t -> 'a Wdata.t -> 'a Wdata.t
(** Record-wise minimum of weights. *)

val concat : 'a Wdata.t -> 'a Wdata.t -> 'a Wdata.t
(** Record-wise sum of weights. *)

val except : 'a Wdata.t -> 'a Wdata.t -> 'a Wdata.t
(** Record-wise difference of weights ([A − B]; may produce negative
    weights). *)

val join :
  kl:('a -> 'k) ->
  kr:('b -> 'k) ->
  reduce:('a -> 'b -> 'c) ->
  'a Wdata.t ->
  'b Wdata.t ->
  'c Wdata.t
(** [join ~kl ~kr ~reduce a b] is wPINQ's stable equi-join (Section 2.7).
    With [A_k, B_k] the restrictions of the inputs to key [k], the output is
    [Σ_k (A_k × B_kᵀ) / (‖A_k‖ + ‖B_k‖)]: every matched pair
    [(x, y)] contributes [reduce x y] with weight
    [A x · B y / (‖A_k‖ + ‖B_k‖)].  Scaling the outer product down by the
    total key weight is what bounds the influence of any one input record,
    where the standard relational join is unboundedly sensitive. *)

val shave : ('a -> float Seq.t) -> 'a Wdata.t -> ('a * int) Wdata.t
(** [shave f a] decomposes each record [x] of weight [A x > 0] into indexed
    records [(x, 0), (x, 1), ...] with weights [w₀, w₁, ...] drawn from
    [f x], each clipped so the emitted weights sum to exactly [A x]
    (Section 2.8).  Emission stops at the first non-positive weight in
    [f x], so constant sequences are safe.  Records with non-positive
    weight produce nothing. *)

val distinct : ?bound:float -> 'a Wdata.t -> 'a Wdata.t
(** [distinct ?bound a] caps every weight into [[0, bound]] (default 1.0):
    the weighted analogue of PINQ's [Distinct].  Stable: capping is a
    1-Lipschitz map of each record's weight. *)

val shave_const : float -> 'a Wdata.t -> ('a * int) Wdata.t
(** [shave_const w] shaves every record into slabs of constant weight [w];
    [shave_const 1.0] is the paper's [Shave(1.0)]. *)

(** {1 Semantics helpers}

    Pure per-part/per-record emission rules, shared with the incremental
    engine and exercised directly by tests. *)

val group_emissions : ('a * float) list -> ('a list * float) list
(** [group_emissions part] lists the prefix emissions of one GroupBy part:
    members ordered by non-increasing weight (ties broken by record order),
    each prefix paired with half the weight drop at its boundary.  Only
    positive-weight input records belong in [part]. *)

val shave_emissions : float Seq.t -> float -> (int * float) list
(** [shave_emissions seq w] lists the [(index, weight)] slabs Shave emits
    for a single record of weight [w]. *)
