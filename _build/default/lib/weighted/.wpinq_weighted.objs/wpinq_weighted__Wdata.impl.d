lib/weighted/wdata.ml: Float Format Hashtbl List
