lib/weighted/ops.ml: Array Float Hashtbl List Option Seq Wdata
