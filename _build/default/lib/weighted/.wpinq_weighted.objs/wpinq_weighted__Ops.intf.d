lib/weighted/ops.mli: Seq Wdata
