lib/weighted/wdata.mli: Format
