(** Weighted datasets: the data model of wPINQ (paper, Section 2.1).

    A weighted dataset over a domain ['a] is a finitely-supported function
    [A : 'a -> float]; [A x] is the real-valued multiplicity of record [x].
    Multisets are the special case of non-negative integer weights.  The
    distance between two datasets is the L1 norm of their difference,
    [‖A − B‖ = Σ_x |A x − B x|], and differential privacy for weighted
    datasets is defined with respect to that distance (Definition 1).

    Values of this type are immutable: every operation returns a fresh
    dataset.  Records are compared with structural equality and hashed with
    the polymorphic hash, so any immutable OCaml value (ints, strings,
    tuples, variants...) can serve as a record. *)

type 'a t
(** An immutable weighted dataset with records of type ['a]. *)

val epsilon_weight : float
(** Weights with absolute value below this threshold are treated as zero and
    dropped from the support.  Keeps floating-point dust from accumulating
    through long operator pipelines. *)

val empty : unit -> 'a t
(** [empty ()] is the dataset with empty support. *)

val singleton : 'a -> float -> 'a t
(** [singleton x w] is the dataset [{x ↦ w}] (empty if [w] is ~0). *)

val of_list : ('a * float) list -> 'a t
(** [of_list assoc] accumulates the weights of duplicate records, as wPINQ
    does implicitly everywhere: [(x, 1.); (x, 0.5)] yields [x ↦ 1.5]. *)

val of_records : 'a list -> 'a t
(** [of_records xs] gives each listed occurrence weight [1.0] (so duplicates
    accumulate), matching the encoding of an input multiset. *)

val to_list : 'a t -> ('a * float) list
(** The support with its weights, in unspecified order. *)

val to_sorted_list : 'a t -> ('a * float) list
(** Like {!to_list} but sorted by record (polymorphic compare), for stable
    printing and testing. *)

val weight : 'a t -> 'a -> float
(** [weight a x] is [A x]; [0.] off the support. *)

val mem : 'a t -> 'a -> bool
(** [mem a x] tests whether [x] has nonzero weight. *)

val support_size : 'a t -> int
(** Number of records with nonzero weight. *)

val norm : 'a t -> float
(** [norm a] is [‖A‖ = Σ_x |A x|] — the "size" of the dataset. *)

val total : 'a t -> float
(** [total a] is [Σ_x A x] (signed, unlike {!norm}). *)

val dist : 'a t -> 'a t -> float
(** [dist a b] is [‖A − B‖], the record-wise L1 distance driving the privacy
    definition and the stability bounds. *)

val add : 'a t -> 'a -> float -> 'a t
(** [add a x w] is the dataset with [w] added to [x]'s weight. *)

val update : 'a t -> ('a * float) list -> 'a t
(** [update a delta] adds every [(x, w)] of [delta] to [a]; the batch
    analogue of feeding a delta to the incremental engine. *)

val scale : float -> 'a t -> 'a t
(** [scale c a] multiplies every weight by [c]. *)

val map_weights : ('a -> float -> float) -> 'a t -> 'a t
(** [map_weights f a] replaces each weight [w] of record [x] by [f x w]. *)

val filter : ('a -> float -> bool) -> 'a t -> 'a t
(** Keeps the records (with their weights) satisfying the predicate. *)

val fold : ('a -> float -> 'acc -> 'acc) -> 'a t -> 'acc -> 'acc
val iter : ('a -> float -> unit) -> 'a t -> unit

val equal : ?tol:float -> 'a t -> 'a t -> bool
(** [equal ?tol a b] holds when [dist a b <= tol] (default [1e-9]). *)

val pp : (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a t -> unit
(** [pp pp_record fmt a] prints [{(x, w); ...}] sorted by record. *)
