module Prng = Wpinq_prng.Prng
module Graph = Wpinq_graph.Graph
module Gen = Wpinq_graph.Gen
module Budget = Wpinq_core.Budget
module Batch = Wpinq_core.Batch
module Flow = Wpinq_core.Flow
module Measurement = Wpinq_core.Measurement
module Gridpath = Wpinq_postprocess.Gridpath
module Isotonic = Wpinq_postprocess.Isotonic
module Qb = Wpinq_queries.Queries.Make (Batch)
module Qf = Wpinq_queries.Queries.Make (Flow)

type seed_measurements = {
  epsilon : float;
  deg_seq : int Measurement.t;
  ccdf : int Measurement.t;
  node_count : unit Measurement.t;
}

let measure_seed ~rng ~epsilon ~sym =
  {
    epsilon;
    deg_seq = Batch.noisy_count ~rng ~epsilon (Qb.degree_sequence sym);
    ccdf = Batch.noisy_count ~rng ~epsilon (Qb.degree_ccdf sym);
    node_count = Batch.noisy_count ~rng ~epsilon (Qb.node_count sym);
  }

(* Estimated number of vertices: the node-count query weighs each vertex
   0.5.  Clamped away from degenerate values so the fit always has room. *)
let estimated_nodes ms =
  let nc = 2.0 *. Measurement.value ms.node_count () in
  max 2 (int_of_float (Float.round nc))

(* The noisy CCDF continues past the true dmax as pure noise; cut it where
   sustained counts drop below a few noise standard deviations (the analyst
   judgment the paper describes). *)
let estimated_dmax ms ~bound =
  let threshold = Float.max 2.0 (2.0 /. ms.epsilon) in
  let last = ref 0 in
  for y = 0 to bound - 1 do
    if Measurement.value ms.ccdf y >= threshold then last := y
  done;
  min bound (!last + 3)

let fit_degrees ms =
  let x_max = estimated_nodes ms in
  let y_max = max 1 (estimated_dmax ms ~bound:x_max) in
  let v = Array.init x_max (fun x -> Measurement.value ms.deg_seq x) in
  let h = Array.init y_max (fun y -> Measurement.value ms.ccdf y) in
  Gridpath.fit ~v ~h

let fit_degrees_pava_only ms =
  let x_max = estimated_nodes ms in
  let v = Array.init x_max (fun x -> Measurement.value ms.deg_seq x) in
  let fitted = Isotonic.non_increasing v in
  Array.map (fun f -> max 0 (int_of_float (Float.round f))) fitted

let seed_graph ~rng ~degrees = Gen.configuration_model ~degrees rng

type query = Tbd of int | Tbi | Sbi | Jdd

let query_cost q eps =
  match q with Tbd _ -> 9.0 *. eps | Tbi -> 4.0 *. eps | Sbi -> 6.0 *. eps | Jdd -> 4.0 *. eps

type query_measurement =
  | Mtbd of int * (int * int * int) Measurement.t
  | Mtbi of unit Measurement.t
  | Msbi of unit Measurement.t
  | Mjdd of (int * int) Measurement.t

let measure_query ~rng ~epsilon ~sym = function
  | Tbd bucket -> Mtbd (bucket, Batch.noisy_count ~rng ~epsilon (Qb.tbd ~bucket sym))
  | Tbi -> Mtbi (Batch.noisy_count ~rng ~epsilon (Qb.tbi sym))
  | Sbi -> Msbi (Batch.noisy_count ~rng ~epsilon (Qb.sbi sym))
  | Jdd -> Mjdd (Batch.noisy_count ~rng ~epsilon (Qb.jdd sym))

let target_of_query qm sym =
  match qm with
  | Mtbd (bucket, m) -> Flow.Target.create (Qf.tbd ~bucket sym) m
  | Mtbi m -> Flow.Target.create (Qf.tbi sym) m
  | Msbi m -> Flow.Target.create (Qf.sbi sym) m
  | Mjdd m -> Flow.Target.create (Qf.jdd sym) m

type trace_point = { step : int; triangles : int; assortativity : float; energy : float }

type result = {
  synthetic : Graph.t;
  seed : Graph.t;
  stats : Mcmc.stats;
  trace : trace_point list;
  total_epsilon : float;
}

let trace_of ~step ~energy g =
  { step; triangles = Graph.triangle_count g; assortativity = Graph.assortativity g; energy }

let synthesize ?(pow = 10_000.0) ?(steps = 100_000) ?trace_every ~rng ~epsilon ~query
    ~secret () =
  let trace_every =
    match trace_every with Some t -> max 1 t | None -> max 1 (steps / 20)
  in
  let total_budget =
    (3.0 *. epsilon)
    +. (match query with Some q -> query_cost q epsilon | None -> 0.0)
  in
  let budget = Budget.create ~name:"secret-graph" total_budget in
  let sym = Batch.source_records ~budget (Graph.directed_edges secret) in
  (* Phase 0/1: measure, discard the secret, build the seed. *)
  let seed_ms = measure_seed ~rng ~epsilon ~sym in
  let degrees = fit_degrees seed_ms in
  let seed = seed_graph ~rng ~degrees in
  match query with
  | None ->
      {
        synthetic = seed;
        seed;
        stats =
          { Mcmc.steps = 0; accepted = 0; invalid = 0; initial_energy = 0.0; final_energy = 0.0 };
        trace = [ trace_of ~step:0 ~energy:0.0 seed ];
        total_epsilon = Budget.spent budget;
      }
  | Some q ->
      let qm = measure_query ~rng ~epsilon ~sym q in
      (* Phase 2: fit the seed to the triangle measurement. *)
      let fit = Fit.create ~rng ~seed_graph:seed ~targets:[ target_of_query qm ] () in
      let trace = ref [ trace_of ~step:0 ~energy:(Fit.energy fit) seed ] in
      let on_step ~step ~energy =
        if step mod trace_every = 0 then
          trace := trace_of ~step ~energy (Fit.graph fit) :: !trace
      in
      let stats = Fit.run fit ~steps ~pow ~on_step () in
      {
        synthetic = Fit.graph fit;
        seed;
        stats;
        trace = List.rev !trace;
        total_epsilon = Budget.spent budget;
      }
