lib/infer/mcmc.mli: Wpinq_prng
