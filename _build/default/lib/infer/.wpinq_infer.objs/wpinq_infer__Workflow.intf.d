lib/infer/workflow.mli: Mcmc Wpinq_core Wpinq_graph Wpinq_prng
