lib/infer/workflow.ml: Array Fit Float List Mcmc Wpinq_core Wpinq_graph Wpinq_postprocess Wpinq_prng Wpinq_queries
