lib/infer/mcmc.ml: Wpinq_prng
