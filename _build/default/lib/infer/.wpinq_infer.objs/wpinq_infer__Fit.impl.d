lib/infer/fit.ml: List Mcmc Wpinq_core Wpinq_dataflow Wpinq_graph Wpinq_prng
