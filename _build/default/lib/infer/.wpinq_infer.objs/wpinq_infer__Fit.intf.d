lib/infer/fit.mli: Mcmc Wpinq_core Wpinq_dataflow Wpinq_graph Wpinq_prng
