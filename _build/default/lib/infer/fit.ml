module Prng = Wpinq_prng.Prng
module Graph = Wpinq_graph.Graph
module Flow = Wpinq_core.Flow
module Dataflow = Wpinq_dataflow.Dataflow

type t = {
  rng : Prng.t;
  engine : Dataflow.Engine.t;
  handle : (int * int) Flow.handle;
  graph : Graph.Mutable.t;
  targets : Flow.Target.t list;
  mutable energy : float;
}

let create ~rng ~seed_graph ~targets () =
  let engine = Dataflow.Engine.create () in
  let handle, sym = Flow.input engine in
  (* Targets attach before any data flows, so their initial distances
     account for every observed record. *)
  let targets = List.map (fun build -> build sym) targets in
  Flow.feed handle (List.map (fun e -> (e, 1.0)) (Graph.directed_edges seed_graph));
  let t =
    {
      rng;
      engine;
      handle;
      graph = Graph.Mutable.of_graph seed_graph;
      targets;
      energy = 0.0;
    }
  in
  t.energy <- Flow.Target.energy targets;
  t

let graph t = Graph.Mutable.to_graph t.graph
let energy t = t.energy
let engine t = t.engine
let targets t = t.targets

let apply_swap t swap =
  Graph.Mutable.apply t.graph swap;
  Flow.feed t.handle (Graph.Mutable.delta swap)

let step ?(pow = 1.0) t =
  match Graph.Mutable.propose_swap t.graph t.rng with
  | None -> false
  | Some swap ->
      apply_swap t swap;
      let proposed = Flow.Target.energy t.targets in
      let delta = proposed -. t.energy in
      if delta <= 0.0 || Prng.uniform t.rng < exp (-.pow *. delta) then begin
        t.energy <- proposed;
        true
      end
      else begin
        apply_swap t (Graph.Mutable.invert swap);
        false
      end

let refresh t =
  List.iter Flow.Target.recompute t.targets;
  t.energy <- Flow.Target.energy t.targets

let run t ~steps ?(pow = 1.0) ?on_step () =
  let stats =
    Mcmc.run ~rng:t.rng ~steps ~pow ~refresh:(fun () -> refresh t) ~refresh_every:100_000
      ?on_step
      ~energy:(fun () -> Flow.Target.energy t.targets)
      ~propose:(fun () -> Graph.Mutable.propose_swap t.graph t.rng)
      ~apply:(fun swap -> apply_swap t swap)
      ~revert:(fun swap -> apply_swap t (Graph.Mutable.invert swap))
      ()
  in
  t.energy <- stats.Mcmc.final_energy;
  stats
