(** Fitting a synthetic graph to wPINQ measurements with the edge-swap walk
    (paper, Section 5.1, Phase 2).

    A fit owns a mutable synthetic graph mirrored into an incremental
    dataflow engine.  Every Metropolis–Hastings step proposes a double-edge
    swap (degree-preserving), feeds the swap's 8-record delta through the
    engine, and reads the updated posterior energy off the measurement
    targets — so a step costs the delta's propagation, not a query
    re-execution. *)

type t

val create :
  rng:Wpinq_prng.Prng.t ->
  seed_graph:Wpinq_graph.Graph.t ->
  targets:((int * int) Wpinq_core.Flow.t -> Wpinq_core.Flow.Target.t) list ->
  unit ->
  t
(** [create ~rng ~seed_graph ~targets ()] builds the engine, instantiates
    each target query over the synthetic symmetric-directed edge input, and
    loads [seed_graph].  Each element of [targets] typically pairs a
    {!Wpinq_queries} pipeline with a {!Wpinq_core.Measurement}, e.g.
    [fun sym -> Flow.Target.create (Q.tbi sym) m]. *)

val graph : t -> Wpinq_graph.Graph.t
(** A snapshot of the current synthetic graph (public; inspect freely). *)

val energy : t -> float
(** Current posterior energy [Σ_i ε_i ‖Q_i(A) − m_i‖₁]. *)

val engine : t -> Wpinq_dataflow.Dataflow.Engine.t
(** The underlying engine, for state-size and work statistics (Figure 6). *)

val targets : t -> Wpinq_core.Flow.Target.t list

val step : ?pow:float -> t -> bool
(** A single Metropolis–Hastings step (default [pow] 1.0); returns whether
    the proposal was accepted.  Exposed for fine-grained benchmarking. *)

val run :
  t ->
  steps:int ->
  ?pow:float ->
  ?on_step:(step:int -> energy:float -> unit) ->
  unit ->
  Mcmc.stats
(** Runs the walk for [steps] proposals (default [pow] 1.0; the paper's
    experiments use 10⁴).  Incremental target distances are refreshed every
    10⁵ steps. *)
