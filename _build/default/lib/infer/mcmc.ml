module Prng = Wpinq_prng.Prng

type stats = {
  steps : int;
  accepted : int;
  invalid : int;
  initial_energy : float;
  final_energy : float;
}

let run ~rng ~steps ?(pow = 1.0) ?refresh ?(refresh_every = 100_000) ?on_step ~energy
    ~propose ~apply ~revert () =
  let accepted = ref 0 and invalid = ref 0 in
  let initial_energy = energy () in
  let current = ref initial_energy in
  for step = 1 to steps do
    (match propose () with
    | None -> incr invalid
    | Some move ->
        apply move;
        let proposed = energy () in
        let delta = proposed -. !current in
        let accept = delta <= 0.0 || Prng.uniform rng < exp (-.pow *. delta) in
        if accept then begin
          current := proposed;
          incr accepted
        end
        else revert move);
    (match refresh with
    | Some f when step mod refresh_every = 0 ->
        f ();
        current := energy ()
    | _ -> ());
    match on_step with Some f -> f ~step ~energy:!current | None -> ()
  done;
  { steps; accepted = !accepted; invalid = !invalid; initial_energy; final_energy = !current }
