(** Fenwick (binary-indexed) tree over non-negative float weights.

    Supports point updates and prefix sums in [O(log n)], plus sampling an
    index with probability proportional to its weight — the primitive the
    nonlinear preferential-attachment generator needs to pick targets
    proportionally to [degreeᵅ] as degrees evolve. *)

type t

val create : int -> t
(** [create n] builds a tree over indices [0 .. n-1], all weights zero. *)

val size : t -> int

val get : t -> int -> float
(** Current weight at an index. *)

val set : t -> int -> float -> unit
(** [set t i w] assigns weight [w ≥ 0] to index [i]. *)

val add : t -> int -> float -> unit
(** [add t i dw] adds [dw] to index [i] (the result must stay ≥ 0). *)

val total : t -> float
(** Sum of all weights. *)

val prefix_sum : t -> int -> float
(** [prefix_sum t i] is the sum of weights at indices [< i]. *)

val sample : t -> Wpinq_prng.Prng.t -> int
(** [sample t rng] draws index [i] with probability [get t i / total t].
    Raises [Invalid_argument] if the total weight is zero. *)
