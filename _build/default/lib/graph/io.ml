let write g path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc "# nodes %d edges %d\n" (Graph.n g) (Graph.m g);
      List.iter (fun (u, v) -> Printf.fprintf oc "%d %d\n" u v) (Graph.edges g))

let read path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let edges = ref [] in
      let n = ref 0 in
      (try
         while true do
           let line = String.trim (input_line ic) in
           if line = "" then ()
           else if String.length line > 0 && line.[0] = '#' then begin
             (* Honor a "# nodes N ..." header if present. *)
             match String.split_on_char ' ' line with
             | "#" :: "nodes" :: count :: _ -> (
                 match int_of_string_opt count with Some c -> n := c | None -> ())
             | _ -> ()
           end
           else
             match
               line |> String.split_on_char ' '
               |> List.filter (fun s -> s <> "")
               |> List.map int_of_string_opt
             with
             | [ Some u; Some v ] -> edges := (u, v) :: !edges
             | _ -> failwith (Printf.sprintf "Io.read: malformed line %S" line)
         done
       with End_of_file -> ());
      Graph.of_edges ~n:!n !edges)
