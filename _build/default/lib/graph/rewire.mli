(** Degree-preserving randomization — the paper's [Random(G)] control.

    Section 5 pairs every real graph with a random graph of the same degree
    distribution but far fewer triangles, produced by repeated double-edge
    swaps.  The comparison shows whether MCMC extracts triangle information
    from the measurements or merely reproduces the degree sequence. *)

val randomize : ?swaps_per_edge:int -> Graph.t -> Wpinq_prng.Prng.t -> Graph.t
(** [randomize ?swaps_per_edge g rng] applies on the order of
    [swaps_per_edge × m] successful double-edge swaps (default 10 per
    edge, enough to mix in practice).  Degrees are preserved exactly;
    triangles and degree correlations are destroyed. *)
