let randomize ?(swaps_per_edge = 10) g rng =
  let mg = Graph.Mutable.of_graph g in
  let wanted = swaps_per_edge * Graph.m g in
  let done_ = ref 0 in
  let attempts = ref 0 in
  let max_attempts = 50 * (wanted + 1) in
  while !done_ < wanted && !attempts < max_attempts do
    incr attempts;
    match Graph.Mutable.propose_swap mg rng with
    | None -> ()
    | Some swap ->
        Graph.Mutable.apply mg swap;
        incr done_
  done;
  Graph.Mutable.to_graph mg
