module Prng = Wpinq_prng.Prng

type t = { tree : float array; values : float array }

let create n =
  if n < 0 then invalid_arg "Fenwick.create";
  { tree = Array.make (n + 1) 0.0; values = Array.make (max n 1) 0.0 }

let size t = Array.length t.values
let get t i = t.values.(i)

let add t i dw =
  t.values.(i) <- t.values.(i) +. dw;
  let n = Array.length t.tree - 1 in
  let j = ref (i + 1) in
  while !j <= n do
    t.tree.(!j) <- t.tree.(!j) +. dw;
    j := !j + (!j land - !j)
  done

let set t i w = add t i (w -. t.values.(i))

let prefix_sum t i =
  let acc = ref 0.0 in
  let j = ref i in
  while !j > 0 do
    acc := !acc +. t.tree.(!j);
    j := !j - (!j land - !j)
  done;
  !acc

let total t = prefix_sum t (Array.length t.tree - 1)

let sample t rng =
  let tot = total t in
  if tot <= 0.0 then invalid_arg "Fenwick.sample: zero total weight";
  let target = Prng.uniform rng *. tot in
  (* Walk down the implicit tree to find the first index whose prefix sum
     exceeds the target. *)
  let n = Array.length t.tree - 1 in
  let log2 =
    let rec go p acc = if p * 2 <= n then go (p * 2) (acc + 1) else acc in
    go 1 0
  in
  let pos = ref 0 and remaining = ref target in
  for k = log2 downto 0 do
    let next = !pos + (1 lsl k) in
    if next <= n && t.tree.(next) < !remaining then begin
      remaining := !remaining -. t.tree.(next);
      pos := next
    end
  done;
  (* !pos is the count of indices with cumulative weight < target. *)
  min !pos (size t - 1)
