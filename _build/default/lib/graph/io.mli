(** Plain-text edge-list serialization (one ["u v"] pair per line, [#]
    comments ignored) — the format SNAP datasets ship in, so real data can
    be dropped in for the synthetic stand-ins when available. *)

val write : Graph.t -> string -> unit
(** [write g path] saves the edge list (with a header comment recording
    [n]). *)

val read : string -> Graph.t
(** [read path] parses an edge list.  Raises [Failure] on malformed
    lines. *)
