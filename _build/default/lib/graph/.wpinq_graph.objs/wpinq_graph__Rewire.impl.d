lib/graph/rewire.ml: Graph
