lib/graph/rewire.mli: Graph Wpinq_prng
