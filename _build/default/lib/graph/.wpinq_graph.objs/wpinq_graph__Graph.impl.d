lib/graph/graph.ml: Array Float Hashtbl List Option Wpinq_prng
