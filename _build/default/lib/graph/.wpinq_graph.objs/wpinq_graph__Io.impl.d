lib/graph/io.ml: Fun Graph List Printf String
