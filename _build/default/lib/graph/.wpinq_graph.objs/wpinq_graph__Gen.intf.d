lib/graph/gen.mli: Graph Wpinq_prng
