lib/graph/gen.ml: Array Fenwick Graph Hashtbl List Wpinq_prng
