lib/graph/fenwick.ml: Array Wpinq_prng
