lib/graph/fenwick.mli: Wpinq_prng
