lib/graph/graph.mli: Wpinq_prng
