module Prng = Wpinq_prng.Prng
module Budget = Wpinq_core.Budget

type 'a t = {
  data : ('a, int) Hashtbl.t Lazy.t;
  stability : (Budget.t * int) list;
}

let counts_of_list xs =
  let h = Hashtbl.create (max 8 (List.length xs)) in
  List.iter (fun x -> Hashtbl.replace h x (1 + Option.value ~default:0 (Hashtbl.find_opt h x))) xs;
  h

let merge_stability ua ub =
  List.fold_left
    (fun acc (b, n) ->
      let rec bump = function
        | [] -> [ (b, n) ]
        | (b', n') :: rest when b' == b -> (b', n' + n) :: rest
        | pair :: rest -> pair :: bump rest
      in
      bump acc)
    ua ub

let amplify c factor = List.map (fun (b, n) -> (b, n * factor)) c.stability

let source ~budget xs = { data = lazy (counts_of_list xs); stability = [ (budget, 1) ] }

let lift1 ~factor op c = { data = lazy (op (Lazy.force c.data)); stability = amplify c factor }

let lift2 ~factor op a b =
  {
    data = lazy (op (Lazy.force a.data) (Lazy.force b.data));
    stability = merge_stability (amplify a factor) (amplify b factor);
  }

let select f =
  lift1 ~factor:1 (fun h ->
      let out = Hashtbl.create (Hashtbl.length h) in
      Hashtbl.iter
        (fun x n ->
          let y = f x in
          Hashtbl.replace out y (n + Option.value ~default:0 (Hashtbl.find_opt out y)))
        h;
      out)

let where p =
  lift1 ~factor:1 (fun h ->
      let out = Hashtbl.create (Hashtbl.length h) in
      Hashtbl.iter (fun x n -> if p x then Hashtbl.replace out x n) h;
      out)

let concat a b =
  lift2 ~factor:1
    (fun ha hb ->
      let out = Hashtbl.copy ha in
      Hashtbl.iter
        (fun x n -> Hashtbl.replace out x (n + Option.value ~default:0 (Hashtbl.find_opt out x)))
        hb;
      out)
    a b

let intersect a b =
  lift2 ~factor:1
    (fun ha hb ->
      let out = Hashtbl.create 16 in
      Hashtbl.iter
        (fun x n ->
          match Hashtbl.find_opt hb x with
          | Some m -> Hashtbl.replace out x (min n m)
          | None -> ())
        ha;
      out)
    a b

let distinct c =
  lift1 ~factor:1
    (fun h ->
      let out = Hashtbl.create (Hashtbl.length h) in
      Hashtbl.iter (fun x _ -> Hashtbl.replace out x 1) h;
      out)
    c

let group_by ~key ~reduce =
  lift1 ~factor:2 (fun h ->
      let parts = Hashtbl.create 16 in
      Hashtbl.iter
        (fun x n ->
          let k = key x in
          let cur = Option.value ~default:[] (Hashtbl.find_opt parts k) in
          Hashtbl.replace parts k (List.rev_append (List.init n (fun _ -> x)) cur))
        h;
      let out = Hashtbl.create (Hashtbl.length parts) in
      Hashtbl.iter (fun k members -> Hashtbl.replace out (k, reduce members) 1) parts;
      out)

let join ~kl ~kr ~reduce a b =
  lift2 ~factor:2
    (fun ha hb ->
      (* Guarded join: a key contributes only if each side holds exactly
         one record (with multiplicity one) under it. *)
      let index key h =
        let parts = Hashtbl.create 16 in
        Hashtbl.iter
          (fun x n ->
            let k = key x in
            let cur = Option.value ~default:[] (Hashtbl.find_opt parts k) in
            Hashtbl.replace parts k ((x, n) :: cur))
          h;
        parts
      in
      let pa = index kl ha and pb = index kr hb in
      let out = Hashtbl.create 16 in
      Hashtbl.iter
        (fun k left ->
          match (left, Hashtbl.find_opt pb k) with
          | [ (x, 1) ], Some [ (y, 1) ] -> Hashtbl.replace out (reduce x y) 1
          | _ -> ())
        pa;
      out)
    a b

let stability c = c.stability

let charge ~epsilon c =
  List.iter
    (fun (b, n) ->
      let cost = float_of_int n *. epsilon in
      if cost > Budget.remaining b +. 1e-9 then
        raise
          (Budget.Exhausted
             { name = Budget.name b; requested = cost; remaining = Budget.remaining b }))
    c.stability;
  List.iter
    (fun (b, n) -> Budget.charge ~label:"pinq" b (float_of_int n *. epsilon))
    c.stability

let noisy_count ~rng ~epsilon c x =
  charge ~epsilon c;
  let n = Option.value ~default:0 (Hashtbl.find_opt (Lazy.force c.data) x) in
  float_of_int n +. Prng.laplace rng ~scale:(1.0 /. epsilon)

let noisy_total ~rng ~epsilon c =
  charge ~epsilon c;
  let n = Hashtbl.fold (fun _ n acc -> acc + n) (Lazy.force c.data) 0 in
  float_of_int n +. Prng.laplace rng ~scale:(1.0 /. epsilon)

let unsafe_contents c = Hashtbl.fold (fun x n acc -> (x, n) :: acc) (Lazy.force c.data) []
