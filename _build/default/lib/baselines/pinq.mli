(** The PINQ baseline (McSherry, SIGMOD 2009): the multiset system wPINQ
    generalizes, reimplemented as a comparator.

    PINQ works with integer-multiplicity multisets and tracks a per-source
    {e stability factor}: a transformation with stability [c] multiplies
    the privacy cost of any downstream aggregation by [c].  Its crucial
    weakness for graph analysis — the paper's motivation — is the [Join]:
    lacking weights to rescale, PINQ's join must suppress every non-unique
    match to stay stable, which destroys the length-two paths every
    triangle analysis needs.  {!Compare} in [lib/experiments] runs the two
    systems head to head. *)

type 'a t
(** A PINQ collection: a multiset of ['a] with provenance. *)

val source : budget:Wpinq_core.Budget.t -> 'a list -> 'a t
(** A protected multiset (duplicates allowed). *)

val select : ('a -> 'b) -> 'a t -> 'b t
(** Per-record map; stability 1. *)

val where : ('a -> bool) -> 'a t -> 'a t
(** Filter; stability 1. *)

val concat : 'a t -> 'a t -> 'a t
(** Multiset union (adds multiplicities); stability 1 per input. *)

val intersect : 'a t -> 'a t -> 'a t
(** Multiset minimum; stability 1 per input. *)

val distinct : 'a t -> 'a t
(** Caps multiplicities at one; stability 1. *)

val group_by : key:('a -> 'k) -> reduce:('a list -> 'r) -> 'a t -> ('k * 'r) t
(** Groups by key and reduces each group to one record; stability 2 (one
    input record moving in or out replaces a whole output group). *)

val join :
  kl:('a -> 'k) -> kr:('b -> 'k) -> reduce:('a -> 'b -> 'c) -> 'a t -> 'b t -> 'c t
(** PINQ's guarded join: emits [reduce a b] only for keys carrying
    {e exactly one} record on each side; all other matches are suppressed
    (the damage the paper's Section 2.7 describes).  Stability 2 per
    input. *)

val stability : 'a t -> (Wpinq_core.Budget.t * int) list
(** Accumulated per-source cost factor: use-count × the product of
    stability constants along each path. *)

val noisy_count :
  rng:Wpinq_prng.Prng.t -> epsilon:float -> 'a t -> 'a -> float
(** [noisy_count ~rng ~epsilon c x] releases [multiplicity x + Laplace(1/epsilon)],
    charging [stability × epsilon] to each source.  (Record-by-record, the
    PINQ idiom; repeated queries re-draw and re-charge.) *)

val noisy_total :
  rng:Wpinq_prng.Prng.t -> epsilon:float -> 'a t -> float
(** Total multiset size plus [Laplace(1/epsilon)], at the same cost. *)

val unsafe_contents : 'a t -> ('a * int) list
(** Exact contents, no privacy ({b testing only}). *)
