module Graph = Wpinq_graph.Graph
module Prng = Wpinq_prng.Prng

let local_sensitivity g =
  (* Max common neighbors over all pairs: enumerate through each middle
     vertex's neighbor pairs, as in Graph.square_count.  O(Σ d²). *)
  let best = ref 0 in
  let counts = Hashtbl.create (16 * max 1 (Graph.n g)) in
  for v = 0 to Graph.n g - 1 do
    let nbrs = Graph.adj g v in
    let d = Array.length nbrs in
    for i = 0 to d - 2 do
      for j = i + 1 to d - 1 do
        let key = (nbrs.(i), nbrs.(j)) in
        let c = 1 + Option.value ~default:0 (Hashtbl.find_opt counts key) in
        Hashtbl.replace counts key c;
        if c > !best then best := c
      done
    done
  done;
  !best

let smooth_bound ~epsilon ~delta g =
  if delta <= 0.0 || delta >= 1.0 then invalid_arg "Smooth.smooth_bound: delta in (0,1)";
  let beta = epsilon /. (2.0 *. log (2.0 /. delta)) in
  let ls = float_of_int (local_sensitivity g) in
  let cap = float_of_int (max 1 (Graph.n g - 2)) in
  (* S = max_t e^{-beta t} min(ls + t, cap).  The inner function rises
     linearly then saturates; its maximum lies at t = 0, at the kink
     t = cap - ls, or where the derivative of e^{-bt}(ls+t) vanishes
     (t* = 1/beta - ls). *)
  let value t = exp (-.beta *. t) *. Float.min (ls +. t) cap in
  let candidates = [ 0.0; Float.max 0.0 (cap -. ls); Float.max 0.0 ((1.0 /. beta) -. ls) ] in
  List.fold_left (fun acc t -> Float.max acc (value t)) 0.0 candidates

let noisy_triangles ~rng ~epsilon ~delta g =
  let s = smooth_bound ~epsilon ~delta g in
  let scale = 2.0 *. s /. epsilon in
  (float_of_int (Graph.triangle_count g) +. Prng.laplace rng ~scale, scale)

let worst_case_noisy_triangles ~rng ~epsilon g =
  let scale = float_of_int (max 1 (Graph.n g - 2)) /. epsilon in
  (float_of_int (Graph.triangle_count g) +. Prng.laplace rng ~scale, scale)
