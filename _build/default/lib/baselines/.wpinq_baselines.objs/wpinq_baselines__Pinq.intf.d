lib/baselines/pinq.mli: Wpinq_core Wpinq_prng
