lib/baselines/pinq.ml: Hashtbl Lazy List Option Wpinq_core Wpinq_prng
