lib/baselines/smooth.mli: Wpinq_graph Wpinq_prng
