lib/baselines/smooth.ml: Array Float Hashtbl List Option Wpinq_graph Wpinq_prng
