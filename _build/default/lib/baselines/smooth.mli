(** Smooth-sensitivity triangle counting (Nissim, Raskhodnikova, Smith,
    STOC 2007) — the instance-dependent comparator the paper's introduction
    contrasts with weighted datasets.

    For edge-DP triangle counting, the local sensitivity of a graph is the
    largest number of common neighbors over any vertex pair (flipping that
    edge creates or destroys that many triangles).  The β-smooth bound
    [S_β(G) = max_{t ≥ 0} e^{-βt} · LS_t(G)] replaces the worst case with a
    smoothed instance-dependent value; we use the conservative distance-[t]
    bound [LS_t(G) ≤ min(LS(G) + t, n − 2)] (each edge flip raises any
    pair's common-neighbor count by at most one).

    The released value is [Δ(G) + Laplace(2 S_β / ε)] with
    [β = ε / (2 ln (2/δ))], which is (ε, δ)-differentially private — a
    slightly weaker guarantee than wPINQ's pure ε-DP, in the baseline's
    favor. *)

val local_sensitivity : Wpinq_graph.Graph.t -> int
(** Largest common-neighborhood size over all vertex pairs. *)

val smooth_bound : epsilon:float -> delta:float -> Wpinq_graph.Graph.t -> float
(** [S_β(G)] for [β = ε / (2 ln (2/δ))]. *)

val noisy_triangles :
  rng:Wpinq_prng.Prng.t ->
  epsilon:float ->
  delta:float ->
  Wpinq_graph.Graph.t ->
  float * float
(** [(released, noise_scale)]: the noisy triangle count and the Laplace
    scale that produced it (for reporting the mechanism's accuracy). *)

val worst_case_noisy_triangles :
  rng:Wpinq_prng.Prng.t -> epsilon:float -> Wpinq_graph.Graph.t -> float * float
(** The global-sensitivity baseline: noise scale [(n − 2) / ε], the
    worst-case bound of Figure 1. *)
