lib/prng/prng.mli:
