module Prng = Wpinq_prng.Prng
module Wdata = Wpinq_weighted.Wdata
module Graph = Wpinq_graph.Graph
module Gen = Wpinq_graph.Gen
module Budget = Wpinq_core.Budget
module Batch = Wpinq_core.Batch
module Flow = Wpinq_core.Flow
module Dataflow = Wpinq_dataflow.Dataflow
module Isotonic = Wpinq_postprocess.Isotonic
module Mcmc = Wpinq_infer.Mcmc
module Fit = Wpinq_infer.Fit
module Workflow = Wpinq_infer.Workflow
module Datasets = Wpinq_data.Datasets
module Qb = Wpinq_queries.Queries.Make (Batch)
module Qf = Wpinq_queries.Queries.Make (Flow)

type config = {
  scale : float;
  steps : int;
  epsilon : float;
  pow : float;
  seed : int;
  repeats : int;
}

let default = { scale = 1.0; steps = 30_000; epsilon = 0.1; pow = 10_000.0; seed = 42; repeats = 3 }

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let subsection title =
  Printf.printf "\n-- %s --\n" title

let now () = Unix.gettimeofday ()

(* ------------------------------------------------------------------ *)
(* Table 1                                                             *)
(* ------------------------------------------------------------------ *)

let table1 cfg =
  section "Table 1: graph statistics (paper values vs. synthetic stand-ins)";
  Printf.printf "%-22s %8s %9s %6s %9s %7s\n" "Graph" "Nodes" "Edges" "dmax" "Triangles" "r";
  let row name nodes edges dmax tri r =
    Printf.printf "%-22s %8d %9d %6d %9d %+7.2f\n" name nodes edges dmax tri r
  in
  List.iter
    (fun (spec : Datasets.spec) ->
      let p = spec.Datasets.paper in
      row ("paper: " ^ spec.Datasets.name) p.Datasets.nodes p.Datasets.edges p.Datasets.dmax
        p.Datasets.triangles p.Datasets.assortativity;
      let g = Datasets.load ~scale:cfg.scale spec in
      row ("ours:  " ^ spec.Datasets.name) (Graph.n g) (2 * Graph.m g) (Graph.dmax g)
        (Graph.triangle_count g) (Graph.assortativity g);
      let rand = Datasets.random_counterpart ~seed:cfg.seed g in
      Printf.printf "%-22s %8s %9s %6s %9d %+7.2f\n"
        ("paper: Random(" ^ spec.Datasets.name ^ ")")
        "-" "-" "-" spec.Datasets.paper_random_triangles
        spec.Datasets.paper_random_assortativity;
      row
        ("ours:  Random(" ^ spec.Datasets.name ^ ")")
        (Graph.n rand) (2 * Graph.m rand) (Graph.dmax rand) (Graph.triangle_count rand)
        (Graph.assortativity rand);
      print_newline ())
    Datasets.table1

(* ------------------------------------------------------------------ *)
(* Figure 3: TbD with and without bucketing on CA-GrQc                 *)
(* ------------------------------------------------------------------ *)

let tbd_signal_analysis ~epsilon ~bucket g =
  (* The Section 5.2 discussion: how much TbD weight exists at all, and how
     much of it survives bucketing into the lowest bucket. *)
  let budget = Budget.create ~name:"signal" 1e9 in
  let sym = Batch.source_records ~budget (Graph.directed_edges g) in
  let raw = Batch.unsafe_value (Qb.tbd sym) in
  let bucketed = Batch.unsafe_value (Qb.tbd ~bucket sym) in
  let total = Wdata.total bucketed in
  let heaviest = Wdata.fold (fun _ w acc -> Float.max acc w) bucketed 0.0 in
  Printf.printf
    "signal analysis: total TbD weight %.1f across %d records; bucketing concentrates\n\
    \  it into %d records (%.0f%% in the heaviest) vs Laplace noise amplitude 1/eps = %.0f\n"
    (Wdata.total raw) (Wdata.support_size raw) (Wdata.support_size bucketed)
    (100.0 *. heaviest /. Float.max total 1e-9)
    (1.0 /. epsilon)

let figure3 cfg =
  section "Figure 3: TbD-driven synthesis on CA-GrQc, with and without bucketing";
  let scale = cfg.scale *. 0.5 in
  let secret = Datasets.load ~scale Datasets.grqc in
  let random = Datasets.random_counterpart ~seed:cfg.seed secret in
  Printf.printf "CA-GrQc stand-in at half scale: n=%d m=%d tri=%d r=%.2f; random: tri=%d\n"
    (Graph.n secret) (Graph.m secret) (Graph.triangle_count secret)
    (Graph.assortativity secret) (Graph.triangle_count random);
  (* The paper buckets by k=20 at dmax 81; we bucket by k=5 at our scaled
     dmax so the bucketing stays non-trivial. *)
  let bucket = max 2 (Graph.dmax secret / 4) in
  tbd_signal_analysis ~epsilon:cfg.epsilon ~bucket secret;
  Printf.printf
    "(paper: eps=0.1, pow=10^4, 5x10^6 steps, bucket 20 at dmax 81; here bucket %d\n\
    \ at dmax %d; privacy cost 9eps + 3eps seed)\n"
    bucket (Graph.dmax secret);
  let run name g bucket =
    let r =
      Workflow.synthesize ~pow:cfg.pow ~steps:cfg.steps ~trace_every:(max 1 (cfg.steps / 8))
        ~rng:(Prng.create cfg.seed) ~epsilon:cfg.epsilon
        ~query:(Some (Workflow.Tbd bucket)) ~secret:g ()
    in
    (name, r)
  in
  let runs =
    [
      run "GrQc" secret 1;
      run "GrQc+buckets" secret bucket;
      run "Random" random 1;
      run "Random+buckets" random bucket;
    ]
  in
  Printf.printf "\n%10s" "step";
  List.iter (fun (name, _) -> Printf.printf " | %14s tri      r" name) runs;
  print_newline ();
  let traces = List.map (fun (_, (r : Workflow.result)) -> Array.of_list r.trace) runs in
  let points = List.fold_left (fun acc t -> max acc (Array.length t)) 0 traces in
  for i = 0 to points - 1 do
    let step = (List.nth traces 0).(min i (Array.length (List.nth traces 0) - 1)).Workflow.step in
    Printf.printf "%10d" step;
    List.iter
      (fun t ->
        let p = t.(min i (Array.length t - 1)) in
        Printf.printf " | %18d %+.3f" p.Workflow.triangles p.Workflow.assortativity)
      traces;
    print_newline ()
  done;
  Printf.printf
    "\n(paper finding: bucketing is what lets MCMC separate GrQc from Random - the\n\
    \ bucketed real-vs-random gap should exceed the raw one - while neither run\n\
    \ approaches the true count: the per-triple TbD signal is mostly noise.)\n"

(* ------------------------------------------------------------------ *)
(* Table 2 and Figure 4: TbI-driven synthesis                          *)
(* ------------------------------------------------------------------ *)

let table2_paper = [ ("CA-GrQc", 643, 35201, 48260); ("CA-HepPh", 248_629, 2_723_633, 3_358_499);
                     ("CA-HepTh", 222, 16_889, 28_339); ("Caltech", 45_170, 129_475, 119_563) ]

let tbi_specs = [ Datasets.grqc; Datasets.hepph; Datasets.hepth; Datasets.caltech ]

let table2 cfg =
  section "Table 2: triangles before MCMC (seed), after TbI-driven MCMC, and in truth";
  Printf.printf "(paper: 5x10^6 steps; here %d steps at scale %.2f)\n\n" cfg.steps cfg.scale;
  Printf.printf "%-10s | %24s | %24s\n" "" "paper (full data)" "ours (stand-in)";
  Printf.printf "%-10s | %7s %8s %8s | %7s %8s %8s\n" "Graph" "Seed" "MCMC" "Truth" "Seed" "MCMC"
    "Truth";
  List.iter2
    (fun (spec : Datasets.spec) (pname, pseed, pmcmc, ptruth) ->
      assert (pname = spec.Datasets.name);
      let secret = Datasets.load ~scale:cfg.scale spec in
      let r =
        Workflow.synthesize ~pow:cfg.pow ~steps:cfg.steps ~rng:(Prng.create cfg.seed)
          ~epsilon:cfg.epsilon ~query:(Some Workflow.Tbi) ~secret ()
      in
      Printf.printf "%-10s | %7d %8d %8d | %7d %8d %8d\n" spec.Datasets.name pseed pmcmc
        ptruth
        (Graph.triangle_count r.Workflow.seed)
        (Graph.triangle_count r.Workflow.synthetic)
        (Graph.triangle_count secret))
    tbi_specs table2_paper

let figure4 cfg =
  section "Figure 4: TbI triangle trajectories, real vs. random";
  Printf.printf "(paper: 5x10^5 steps, eps=0.1, cost 4eps + 3eps seed)\n";
  List.iter
    (fun (spec : Datasets.spec) ->
      let secret = Datasets.load ~scale:cfg.scale spec in
      let random = Datasets.random_counterpart ~seed:cfg.seed secret in
      let run g =
        Workflow.synthesize ~pow:cfg.pow ~steps:cfg.steps ~trace_every:(max 1 (cfg.steps / 10))
          ~rng:(Prng.create cfg.seed) ~epsilon:cfg.epsilon ~query:(Some Workflow.Tbi)
          ~secret:g ()
      in
      let real = run secret and rand = run random in
      subsection
        (Printf.sprintf "%s (truth: real=%d, random=%d)" spec.Datasets.name
           (Graph.triangle_count secret) (Graph.triangle_count random));
      Printf.printf "%10s %12s %12s\n" "step" "real tri" "random tri";
      List.iter2
        (fun (p : Workflow.trace_point) (q : Workflow.trace_point) ->
          Printf.printf "%10d %12d %12d\n" p.Workflow.step p.Workflow.triangles
            q.Workflow.triangles)
        real.Workflow.trace rand.Workflow.trace)
    tbi_specs

(* ------------------------------------------------------------------ *)
(* Figure 5: sensitivity to epsilon                                    *)
(* ------------------------------------------------------------------ *)

let figure5 cfg =
  section "Figure 5: TbI fits of CA-GrQc across epsilon (mean +/- std of final triangles)";
  Printf.printf "(paper: eps in {0.01, 0.1, 1, 10}, total cost 7eps, 5 repeats; here %d repeats)\n\n"
    cfg.repeats;
  let secret = Datasets.load ~scale:cfg.scale Datasets.grqc in
  let random = Datasets.random_counterpart ~seed:cfg.seed secret in
  Printf.printf "truth: real=%d random=%d seed-free baseline\n" (Graph.triangle_count secret)
    (Graph.triangle_count random);
  Printf.printf "%8s | %12s %12s | %12s\n" "eps" "mean tri" "std" "random mean";
  List.iter
    (fun eps ->
      let finals g =
        List.init cfg.repeats (fun i ->
            let r =
              Workflow.synthesize ~pow:cfg.pow ~steps:cfg.steps
                ~rng:(Prng.create (cfg.seed + (1000 * i)))
                ~epsilon:eps ~query:(Some Workflow.Tbi) ~secret:g ()
            in
            float_of_int (Graph.triangle_count r.Workflow.synthetic))
      in
      let stats l =
        let n = float_of_int (List.length l) in
        let mean = List.fold_left ( +. ) 0.0 l /. n in
        let var = List.fold_left (fun a x -> a +. ((x -. mean) ** 2.0)) 0.0 l /. n in
        (mean, sqrt var)
      in
      let mean, std = stats (finals secret) in
      let rmean, _ = stats (finals random) in
      Printf.printf "%8.2f | %12.0f %12.0f | %12.0f\n%!" eps mean std rmean)
    [ 0.01; 0.1; 1.0; 10.0 ]

(* ------------------------------------------------------------------ *)
(* Table 3 and Figure 6: scalability                                   *)
(* ------------------------------------------------------------------ *)

let table3 cfg =
  section "Table 3: Barabasi-Albert graphs with growing attachment skew";
  Printf.printf "(paper: 100k nodes, 2M edges; ours: scaled stand-ins with the same sweep)\n\n";
  Printf.printf "%-12s %5s | %6s %9s %12s | %6s %9s %12s\n" "Graph" "beta" "dmax" "tri"
    "sum d^2" "dmax" "tri" "sum d^2";
  Printf.printf "%-12s %5s | %28s | %28s\n" "" "" "paper" "ours";
  List.iter
    (fun (spec : Datasets.ba_spec) ->
      let g = Datasets.ba_graph ~scale:cfg.scale spec in
      Printf.printf "%-12s %5.2f | %6d %9d %12d | %6d %9d %12d\n" spec.Datasets.label
        spec.Datasets.beta spec.Datasets.paper_dmax spec.Datasets.paper_triangles
        spec.Datasets.paper_sum_deg_sq (Graph.dmax g) (Graph.triangle_count g)
        (Graph.sum_deg_sq g))
    Datasets.table3

let tbi_target_of ~rng ~epsilon secret =
  let budget = Budget.create ~name:"fig6" 1e9 in
  let sym = Batch.source_records ~budget (Graph.directed_edges secret) in
  let m = Batch.noisy_count ~rng ~epsilon (Qb.tbi sym) in
  fun sym_flow -> Flow.Target.create (Qf.tbi sym_flow) m

let figure6 cfg =
  section "Figure 6 (left): TbI engine cost vs. sum d^2 on the Barabasi-Albert sweep";
  Printf.printf
    "(paper: 25GB->45GB memory and 80->25 steps/s as sum d^2 grows 72M->119M;\n\
    \ ours reports engine state records as the memory proxy)\n\n";
  Printf.printf "%-12s %12s %14s %12s %12s\n" "Graph" "sum d^2" "state records" "steps/s"
    "accept %";
  let probe_steps = max 500 (cfg.steps / 10) in
  List.iter
    (fun (spec : Datasets.ba_spec) ->
      let secret = Datasets.ba_graph ~scale:cfg.scale spec in
      let rng = Prng.create cfg.seed in
      let target = tbi_target_of ~rng ~epsilon:cfg.epsilon secret in
      let seed = Datasets.random_counterpart ~seed:cfg.seed secret in
      let fit = Fit.create ~rng ~seed_graph:seed ~targets:[ target ] () in
      let state = Dataflow.Engine.state_records (Fit.engine fit) in
      let t0 = now () in
      let stats = Fit.run fit ~steps:probe_steps ~pow:cfg.pow () in
      let dt = now () -. t0 in
      Printf.printf "%-12s %12d %14d %12.0f %11.1f%%\n%!" spec.Datasets.label
        (Graph.sum_deg_sq secret) state
        (float_of_int probe_steps /. dt)
        (100.0 *. float_of_int stats.Mcmc.accepted /. float_of_int probe_steps))
    Datasets.table3;
  section "Figure 6 (right): TbI behaviour on Epinions vs. Random(Epinions)";
  let secret = Datasets.load ~scale:cfg.scale Datasets.epinions in
  let random = Datasets.random_counterpart ~seed:cfg.seed secret in
  Printf.printf "truth: real=%d random=%d\n" (Graph.triangle_count secret)
    (Graph.triangle_count random);
  let run g =
    Workflow.synthesize ~pow:cfg.pow ~steps:cfg.steps ~trace_every:(max 1 (cfg.steps / 10))
      ~rng:(Prng.create cfg.seed) ~epsilon:cfg.epsilon ~query:(Some Workflow.Tbi) ~secret:g ()
  in
  let real = run secret and rand = run random in
  Printf.printf "%10s %12s %12s\n" "step" "real tri" "random tri";
  List.iter2
    (fun (p : Workflow.trace_point) (q : Workflow.trace_point) ->
      Printf.printf "%10d %12d %12d\n" p.Workflow.step p.Workflow.triangles
        q.Workflow.triangles)
    real.Workflow.trace rand.Workflow.trace

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

let ablation_incremental cfg =
  section "Ablation: incremental maintenance vs. from-scratch re-execution (TbI)";
  let secret = Datasets.load ~scale:(cfg.scale *. 0.5) Datasets.grqc in
  let rng = Prng.create cfg.seed in
  let target = tbi_target_of ~rng ~epsilon:cfg.epsilon secret in
  let fit = Fit.create ~rng ~seed_graph:secret ~targets:[ target ] () in
  let steps = 2_000 in
  let t0 = now () in
  let _ = Fit.run fit ~steps ~pow:cfg.pow () in
  let incr_per_step = (now () -. t0) /. float_of_int steps in
  (* From-scratch strategy: re-evaluate the whole TbI pipeline per step. *)
  let mutable_g = Graph.Mutable.of_graph secret in
  let scratch_evals = 20 in
  let t1 = now () in
  for _ = 1 to scratch_evals do
    (match Graph.Mutable.propose_swap mutable_g rng with
    | Some s -> Graph.Mutable.apply mutable_g s
    | None -> ());
    let budget = Budget.create ~name:"scratch" 1e9 in
    let sym =
      Batch.source_records ~budget (Graph.directed_edges (Graph.Mutable.to_graph mutable_g))
    in
    ignore (Wdata.total (Batch.unsafe_value (Qb.tbi sym)))
  done;
  let scratch_per_step = (now () -. t1) /. float_of_int scratch_evals in
  Printf.printf
    "graph n=%d m=%d: incremental %.3f ms/step, from-scratch %.1f ms/step -> %.0fx speedup\n"
    (Graph.n secret) (Graph.m secret) (1000.0 *. incr_per_step) (1000.0 *. scratch_per_step)
    (scratch_per_step /. incr_per_step)

let ablation_join cfg =
  section "Ablation: Join's norm-preserving fast path (Appendix B)";
  let secret = Datasets.load ~scale:(cfg.scale *. 0.5) Datasets.grqc in
  let rng = Prng.create cfg.seed in
  let target = tbi_target_of ~rng ~epsilon:cfg.epsilon secret in
  let fit = Fit.create ~rng ~seed_graph:secret ~targets:[ target ] () in
  let engine = Fit.engine fit in
  let f0 = Dataflow.Engine.join_fast_updates engine in
  let s0 = Dataflow.Engine.join_full_rescales engine in
  let _ = Fit.run fit ~steps:5_000 ~pow:cfg.pow () in
  let fast = Dataflow.Engine.join_fast_updates engine - f0 in
  let full = Dataflow.Engine.join_full_rescales engine - s0 in
  Printf.printf
    "during 5000 swap steps: %d fast per-key updates, %d full rescales (%.1f%% fast)\n\
     (edge swaps preserve key norms, so nearly all Join work takes the linear path)\n"
    fast full
    (100.0 *. float_of_int fast /. float_of_int (max 1 (fast + full)))

let ablation_seed cfg =
  section "Ablation: degree-matched seed vs. Erdos-Renyi seed (Section 4.2, initial state)";
  let secret = Datasets.load ~scale:(cfg.scale *. 0.5) Datasets.grqc in
  let rng = Prng.create cfg.seed in
  let target = tbi_target_of ~rng ~epsilon:cfg.epsilon secret in
  let seed_matched = Datasets.random_counterpart ~seed:cfg.seed secret in
  let seed_er = Gen.erdos_renyi ~n:(Graph.n secret) ~m:(Graph.m secret) (Prng.create cfg.seed) in
  let run name seed =
    let fit = Fit.create ~rng:(Prng.create (cfg.seed + 1)) ~seed_graph:seed ~targets:[ target ] () in
    let e0 = Fit.energy fit in
    let _ = Fit.run fit ~steps:(max 2_000 (cfg.steps / 4)) ~pow:cfg.pow () in
    Printf.printf "%-22s energy %8.2f -> %8.2f, triangles %6d -> %6d (truth %d)\n" name e0
      (Fit.energy fit)
      (Graph.triangle_count seed)
      (Graph.triangle_count (Fit.graph fit))
      (Graph.triangle_count secret)
  in
  run "degree-matched seed" seed_matched;
  run "Erdos-Renyi seed" seed_er;
  Printf.printf
    "(beyond fit quality, the degree-matched start is what keeps the walk - which\n\
    \ preserves degrees exactly - anchored to the measured degree sequence.)\n"

let ablation_postprocess cfg =
  section "Ablation: degree-sequence post-processing (raw vs. PAVA vs. grid path)";
  let secret = Datasets.load ~scale:(cfg.scale *. 0.5) Datasets.grqc in
  let truth = Graph.degree_sequence_desc secret in
  Printf.printf "%8s | %10s %10s %10s   (L1 error of the degree sequence)\n" "eps" "raw"
    "PAVA" "grid path";
  List.iter
    (fun eps ->
      let budget = Budget.create ~name:"pp" 1e9 in
      let sym = Batch.source_records ~budget (Graph.directed_edges secret) in
      let ms = Workflow.measure_seed ~rng:(Prng.create cfg.seed) ~epsilon:eps ~sym in
      let err fitted =
        let n = max (Array.length truth) (Array.length fitted) in
        let acc = ref 0.0 in
        for i = 0 to n - 1 do
          let t = if i < Array.length truth then float_of_int truth.(i) else 0.0 in
          let f = if i < Array.length fitted then float_of_int fitted.(i) else 0.0 in
          acc := !acc +. Float.abs (t -. f)
        done;
        !acc
      in
      let raw =
        Array.init (Array.length truth) (fun x ->
            int_of_float (Float.round (Wpinq_core.Measurement.value ms.Workflow.deg_seq x)))
      in
      let pava = Workflow.fit_degrees_pava_only ms in
      let grid = Workflow.fit_degrees ms in
      Printf.printf "%8.2f | %10.0f %10.0f %10.0f\n%!" eps (err raw) (err pava) (err grid))
    [ 0.05; 0.1; 0.5; 1.0 ]

let ablation_combined cfg =
  section "Ablation: combining measurements (Section 1.2, benefit 2)";
  let secret = Datasets.load ~scale:(cfg.scale *. 0.5) Datasets.grqc in
  let rng = Prng.create cfg.seed in
  let budget = Budget.create ~name:"grqc" 1e9 in
  let sym = Batch.source_records ~budget (Graph.directed_edges secret) in
  let m_tbi = Batch.noisy_count ~rng ~epsilon:cfg.epsilon (Qb.tbi sym) in
  let m_jdd = Batch.noisy_count ~rng ~epsilon:cfg.epsilon (Qb.jdd sym) in
  let t_tbi flow = Flow.Target.create (Qf.tbi flow) m_tbi in
  let t_jdd flow = Flow.Target.create (Qf.jdd flow) m_jdd in
  let seed = Datasets.random_counterpart ~seed:cfg.seed secret in
  let steps = max 2_000 (cfg.steps / 2) in
  Printf.printf "truth: triangles %d, assortativity %+.3f; seed: %d, %+.3f; %d steps

"
    (Graph.triangle_count secret) (Graph.assortativity secret) (Graph.triangle_count seed)
    (Graph.assortativity seed) steps;
  Printf.printf "%-14s %10s %14s
" "targets" "triangles" "assortativity";
  let run name targets =
    let fit = Fit.create ~rng:(Prng.create (cfg.seed + 1)) ~seed_graph:seed ~targets () in
    let _ = Fit.run fit ~steps ~pow:cfg.pow () in
    let g = Fit.graph fit in
    Printf.printf "%-14s %10d %+14.3f
%!" name (Graph.triangle_count g)
      (Graph.assortativity g)
  in
  run "TbI only" [ t_tbi ];
  run "JDD only" [ t_jdd ];
  run "TbI + JDD" [ t_tbi; t_jdd ];
  Printf.printf
    "(the combined posterior should track both statistics at once, where each
    \ single-measurement fit only moves its own.)
"

let baselines cfg =
  section "Baselines: four ways to count triangles privately (intro / Figure 1)";
  let module Pinq = Wpinq_baselines.Pinq in
  let module Smooth = Wpinq_baselines.Smooth in
  let v = 120 in
  let worst =
    (* Two hubs adjacent to everyone (but not to each other): adding edge
       (0,1) would create |V|-2 triangles at once. *)
    Graph.of_edges
      (List.concat_map (fun i -> [ (0, i); (1, i) ]) (List.init (v - 2) (fun i -> i + 2)))
  in
  let best =
    Graph.of_edges
      (List.concat_map
         (fun i -> [ (3 * i, (3 * i) + 1); ((3 * i) + 1, (3 * i) + 2); (3 * i, (3 * i) + 2) ])
         (List.init (v / 3) (fun i -> i)))
  in
  let union =
    Graph.of_edges
      (Graph.edges worst @ List.map (fun (a, b) -> (a + v, b + v)) (Graph.edges best))
  in
  let eps = Float.max cfg.epsilon 0.5 and delta = 1e-6 in
  Printf.printf "eps = %.2f (delta = %g for the smooth-sensitivity mechanism)

" eps delta;
  Printf.printf "%-12s %6s | %22s | %22s | %10s | %18s
" "graph" "true"
    "worst-case Laplace" "smooth sensitivity" "PINQ" "wPINQ TbI";
  Printf.printf "%-12s %6s | %10s %11s | %10s %11s | %10s | %8s %9s
" "" ""
    "released" "noise" "released" "noise" "paths" "signal" "measured";
  let rng = Prng.create cfg.seed in
  List.iter
    (fun (name, g) ->
      let wc, wc_scale = Smooth.worst_case_noisy_triangles ~rng ~epsilon:eps g in
      let sm, sm_scale = Smooth.noisy_triangles ~rng ~epsilon:eps ~delta g in
      (* PINQ: length-two paths via the guarded join - any vertex of degree
         >= 2 is suppressed, so triangle analysis gets no raw material. *)
      let pinq_paths =
        let budget = Budget.create ~name:"pinq" 1e9 in
        let edges = Pinq.source ~budget (Graph.directed_edges g) in
        let paths = Pinq.join ~kl:snd ~kr:fst ~reduce:(fun (a, b) (_, c) -> (a, b, c)) edges edges in
        List.fold_left (fun acc (_, n) -> acc + n) 0 (Pinq.unsafe_contents paths)
      in
      (* wPINQ: the TbI count at constant noise 4/eps. *)
      let budget = Budget.create ~name:"wpinq" 1e9 in
      let sym = Batch.source_records ~budget (Graph.directed_edges g) in
      let m = Batch.noisy_count ~rng ~epsilon:eps (Qb.tbi sym) in
      Printf.printf "%-12s %6d | %10.0f %11.0f | %10.0f %11.1f | %10d | %8.1f %9.1f
" name
        (Graph.triangle_count g) wc wc_scale sm sm_scale pinq_paths (Graph.tbi_signal g)
        (Wpinq_core.Measurement.value m ()))
    [ ("worst-case", worst); ("best-case", best); ("union", union) ];
  Printf.printf
    "
Reading: worst-case noise drowns every graph; smooth sensitivity is accurate
     on the best-case ring but collapses on the union (one bad pair poisons the
     whole instance); PINQ's guarded join suppresses every length-two path through
     a degree>=2 vertex, leaving nothing to count; wPINQ's weighted count keeps the
     well-behaved half of the union at constant noise.
"

let ablations cfg =
  baselines cfg;
  ablation_combined cfg;
  ablation_incremental cfg;
  ablation_join cfg;
  ablation_seed cfg;
  ablation_postprocess cfg

let all cfg =
  table1 cfg;
  figure3 cfg;
  table2 cfg;
  figure4 cfg;
  figure5 cfg;
  table3 cfg;
  figure6 cfg
