(** Reproductions of every table and figure in the paper's evaluation
    (Section 5), printed as text to stdout.

    Each function regenerates one artifact on the synthetic stand-in
    datasets (see {!Wpinq_data.Datasets} and DESIGN.md), printing the
    paper's reported numbers alongside the measured ones.  Absolute values
    differ — the stand-ins are laptop-scale — but the comparisons the paper
    draws (real vs. random, bucketed vs. raw, scaling trends) are
    reproduced.  EXPERIMENTS.md records a run's results against the paper.

    All experiments are deterministic in [seed].  [scale] multiplies
    dataset sizes; [steps] the MCMC length.  Defaults are sized so the full
    suite finishes in minutes; the paper's settings (5×10⁶ steps, full
    sizes) are reachable through the flags of [bin/experiments.exe]. *)

type config = {
  scale : float;  (** dataset size multiplier (default 1.0) *)
  steps : int;  (** MCMC steps for fitting experiments *)
  epsilon : float;  (** per-query ε (default 0.1, the paper's) *)
  pow : float;  (** MCMC sharpening (default 10⁴, the paper's) *)
  seed : int;  (** master PRNG seed *)
  repeats : int;  (** repetitions where variance is reported (Figure 5) *)
}

val default : config

val table1 : config -> unit
(** Graph statistics of every dataset and its degree-preserving
    randomization: nodes, edges, dmax, Δ, r. *)

val figure3 : config -> unit
(** TbD-driven synthesis on CA-GrQc vs Random(GrQc), with and without
    degree bucketing (k = 20): triangle and assortativity trajectories,
    plus the Section 5.2 signal analysis (total TbD weight and its
    concentration in the lowest bucket). *)

val table2 : config -> unit
(** Triangles before MCMC (seed), after TbI-driven MCMC, and in the
    original graph, for GrQc / HepPh / HepTh / Caltech. *)

val figure4 : config -> unit
(** TbI-driven triangle trajectories for the four graphs, real vs
    random. *)

val figure5 : config -> unit
(** TbI fits of CA-GrQc across ε ∈ {0.01, 0.1, 1, 10}: final triangle
    counts, mean ± std over [config.repeats] runs. *)

val table3 : config -> unit
(** The Barabási–Albert sweep: dmax, Δ, Σ d² as the attachment skew
    grows. *)

val figure6 : config -> unit
(** Scalability: MCMC steps/second and engine state size against Σ d² on
    the five BA graphs (left), and the TbI trajectory on Epinions vs
    Random(Epinions) (right). *)

val all : config -> unit
(** Every table and figure, in paper order. *)

(** {1 Ablations} — design-choice experiments beyond the paper's artifacts
    (DESIGN.md lists them). *)

val ablation_incremental : config -> unit
(** Incremental re-evaluation vs from-scratch re-execution of TbI under
    edge swaps: per-step latency of both strategies. *)

val ablation_join : config -> unit
(** How often Join's norm-preserving fast path fires during a fit, and the
    work saved. *)

val ablation_seed : config -> unit
(** Degree-matched seed vs an Erdős–Rényi seed of equal size: fit progress
    from each start. *)

val ablation_postprocess : config -> unit
(** Degree-sequence accuracy of raw noisy measurements vs PAVA vs the
    CCDF+sequence grid-path fit, across ε. *)

val ablation_combined : config -> unit
(** Fitting several measurements at once (Section 1.2, benefit 2): TbI
    alone vs JDD alone vs both together — the combined posterior should
    recover triangles {e and} assortativity better than either alone. *)

val baselines : config -> unit
(** Head-to-head triangle counting on the Figure 1 graphs (worst-case
    two-hub graph, best-case triangle ring, and their union): worst-case
    Laplace vs. smooth sensitivity vs. PINQ's guarded join vs. wPINQ's
    TbI — the comparison the paper's introduction makes. *)

val ablations : config -> unit
(** All ablations (includes {!baselines}). *)
