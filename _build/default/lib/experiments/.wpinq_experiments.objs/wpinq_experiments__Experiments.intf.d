lib/experiments/experiments.mli:
