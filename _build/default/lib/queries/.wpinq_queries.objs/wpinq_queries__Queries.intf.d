lib/queries/queries.mli: Wpinq_core
