lib/queries/queries.ml: Float List Wpinq_core
