(* The benchmark harness.

   Part 1 regenerates every table and figure of the paper's evaluation
   (Section 5) through Wpinq_experiments, with per-experiment step budgets
   sized so the whole run finishes in minutes.  `bin/experiments.exe`
   exposes the same code with free knobs for longer, closer-to-paper runs.

   Part 2 runs Bechamel micro-benchmarks of the kernels those experiments
   stress: one per table/figure kernel plus the core engine primitives. *)

module E = Wpinq_experiments.Experiments
module Prng = Wpinq_prng.Prng
module Wdata = Wpinq_weighted.Wdata
module Ops = Wpinq_weighted.Ops
module Graph = Wpinq_graph.Graph
module Gen = Wpinq_graph.Gen
module Budget = Wpinq_core.Budget
module Batch = Wpinq_core.Batch
module Flow = Wpinq_core.Flow
module Fit = Wpinq_infer.Fit
module Datasets = Wpinq_data.Datasets
module Gridpath = Wpinq_postprocess.Gridpath
module Qb = Wpinq_queries.Queries.Make (Batch)
module Qf = Wpinq_queries.Queries.Make (Flow)

let banner title =
  Printf.printf "\n############################################################\n";
  Printf.printf "## %s\n" title;
  Printf.printf "############################################################\n%!"

let timed name f =
  let t0 = Unix.gettimeofday () in
  f ();
  Printf.printf "\n[%s finished in %.1fs]\n%!" name (Unix.gettimeofday () -. t0)

let experiments () =
  banner "Part 1: regenerating every table and figure (scaled-down defaults)";
  let base = E.default in
  timed "table1" (fun () -> E.table1 { base with E.steps = 0 });
  timed "figure3" (fun () -> E.figure3 { base with E.steps = 3_000 });
  timed "table2" (fun () -> E.table2 { base with E.steps = 25_000 });
  timed "figure4" (fun () -> E.figure4 { base with E.steps = 12_000 });
  timed "figure5" (fun () -> E.figure5 { base with E.steps = 8_000; E.repeats = 2 });
  timed "table3" (fun () -> E.table3 base);
  timed "figure6" (fun () -> E.figure6 { base with E.steps = 6_000 });
  timed "ablations" (fun () -> E.ablations { base with E.steps = 8_000 })

(* ---------------- Bechamel micro-benchmarks ---------------- *)

open Bechamel
open Toolkit

let grqc_small = lazy (Datasets.load ~scale:0.4 Datasets.grqc)

let make_fit ~tbd scale =
  let secret = Datasets.load ~scale Datasets.grqc in
  let rng = Prng.create 7 in
  let budget = Budget.create ~name:"bench" 1e9 in
  let sym = Batch.source_records ~budget (Graph.directed_edges secret) in
  let target =
    if tbd then begin
      let m = Batch.noisy_count ~rng ~epsilon:0.1 (Qb.tbd ~bucket:4 sym) in
      fun flow -> Flow.Target.create (Qf.tbd ~bucket:4 flow) m
    end
    else begin
      let m = Batch.noisy_count ~rng ~epsilon:0.1 (Qb.tbi sym) in
      fun flow -> Flow.Target.create (Qf.tbi flow) m
    end
  in
  Fit.create ~rng ~seed_graph:secret ~targets:[ target ] ()

let bench_tests () =
  let rng = Prng.create 13 in
  let big_data =
    lazy (Wdata.of_list (List.init 20_000 (fun i -> (i mod 4_096, Prng.float rng 2.0))))
  in
  (* Fixtures are forced ahead of measurement so setup cost (engine build +
     initial load) never lands inside a measured run. *)
  let tbi_fit = lazy (make_fit ~tbd:false 0.4) in
  let tbd_fit = lazy (make_fit ~tbd:true 0.25) in
  ignore (Lazy.force tbi_fit);
  ignore (Lazy.force tbd_fit);
  ignore (Lazy.force grqc_small);
  let noisy_arrays =
    lazy
      (let r = Prng.create 5 in
       let v =
         Array.init 120 (fun i ->
             Float.max 0.0 (float_of_int (30 - (i / 4)) +. Prng.laplace r ~scale:3.0))
       in
       let h =
         Array.init 40 (fun i ->
             Float.max 0.0 (float_of_int (120 - (4 * i)) +. Prng.laplace r ~scale:3.0))
       in
       (v, h))
  in
  ignore (Lazy.force big_data);
  ignore (Lazy.force noisy_arrays);
  [
    (* Table 1 kernel: exact statistics of a stand-in graph. *)
    Test.make ~name:"table1/triangle_count+assortativity"
      (Staged.stage (fun () ->
           let g = Lazy.force grqc_small in
           ignore (Graph.triangle_count g + int_of_float (Graph.assortativity g))));
    (* Figure 3 kernel: one TbD-driven MCMC step. *)
    Test.make ~name:"figure3/tbd_mcmc_step"
      (Staged.stage (fun () -> ignore (Fit.step ~pow:10_000.0 (Lazy.force tbd_fit))));
    (* Table 2 / Figures 4-6 kernel: one TbI-driven MCMC step. *)
    Test.make ~name:"table2+fig4-6/tbi_mcmc_step"
      (Staged.stage (fun () -> ignore (Fit.step ~pow:10_000.0 (Lazy.force tbi_fit))));
    (* Figure 5 kernel: the Laplace mechanism itself. *)
    Test.make ~name:"figure5/laplace_sample"
      (Staged.stage (fun () -> ignore (Prng.laplace rng ~scale:10.0)));
    (* Table 3 kernel: skewed preferential-attachment generation. *)
    Test.make ~name:"table3/barabasi_albert_n2000"
      (Staged.stage (fun () ->
           ignore (Gen.barabasi_albert ~n:2_000 ~m:5 ~alpha:1.2 (Prng.create 3))));
    (* Phase-1 kernel: grid-path degree-sequence fit. *)
    Test.make ~name:"phase1/gridpath_fit"
      (Staged.stage (fun () ->
           let v, h = Lazy.force noisy_arrays in
           ignore (Gridpath.fit ~v ~h)));
    (* Engine primitives. *)
    Test.make ~name:"engine/batch_join_20k_records"
      (Staged.stage (fun () ->
           let d = Lazy.force big_data in
           ignore
             (Ops.join ~kl:(fun x -> x mod 64) ~kr:(fun x -> x mod 64)
                ~reduce:(fun a b -> (a, b))
                d d)));
    Test.make ~name:"engine/batch_group_by_20k_records"
      (Staged.stage (fun () ->
           ignore
             (Ops.group_by ~key:(fun x -> x mod 512) ~reduce:List.length (Lazy.force big_data))));
  ]

let run_benchmarks () =
  banner "Part 2: Bechamel micro-benchmarks";
  Printf.printf "(setting up fixtures...)\n%!";
  let cfg = Benchmark.cfg ~limit:2_000 ~quota:(Time.second 0.5) ~kde:(Some 1_000) () in
  let instances = Instance.[ monotonic_clock ] in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  Printf.printf "%-42s %15s\n" "benchmark" "time/run";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      Hashtbl.iter
        (fun name raw ->
          let est = Analyze.one ols Instance.monotonic_clock raw in
          match Analyze.OLS.estimates est with
          | Some [ t ] ->
              let pretty =
                if t > 1e9 then Printf.sprintf "%8.2f  s" (t /. 1e9)
                else if t > 1e6 then Printf.sprintf "%8.2f ms" (t /. 1e6)
                else if t > 1e3 then Printf.sprintf "%8.2f us" (t /. 1e3)
                else Printf.sprintf "%8.0f ns" t
              in
              Printf.printf "%-42s %15s\n%!" name pretty
          | _ -> Printf.printf "%-42s %15s\n%!" name "n/a")
        results)
    (bench_tests ())

let () =
  let t0 = Unix.gettimeofday () in
  experiments ();
  run_benchmarks ();
  Printf.printf "\nTotal bench time: %.1fs\n" (Unix.gettimeofday () -. t0)
