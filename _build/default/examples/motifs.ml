(* Motif counting beyond triangles (paper, Section 3.5).

   The path-and-join recipe generalizes to any small subgraph.  This
   example contrasts two single-count motif queries — TbI (triangles,
   4 eps) and our SbI extension (4-cycles, 6 eps) — on a lattice, a graph
   with many squares and no triangles, then fits a synthetic graph to the
   SbI measurement and watches the square count recover.

   Run with:  dune exec examples/motifs.exe *)

module Graph = Wpinq_graph.Graph
module Rewire = Wpinq_graph.Rewire
module Prng = Wpinq_prng.Prng
module Budget = Wpinq_core.Budget
module Batch = Wpinq_core.Batch
module Flow = Wpinq_core.Flow
module Measurement = Wpinq_core.Measurement
module Fit = Wpinq_infer.Fit
module Qb = Wpinq_queries.Queries.Make (Batch)
module Qf = Wpinq_queries.Queries.Make (Flow)

let lattice k =
  let idx i j = (i * k) + j in
  let edges = ref [] in
  for i = 0 to k - 1 do
    for j = 0 to k - 1 do
      if i + 1 < k then edges := (idx i j, idx (i + 1) j) :: !edges;
      if j + 1 < k then edges := (idx i j, idx i (j + 1)) :: !edges
    done
  done;
  Graph.of_edges !edges

let () =
  let secret = lattice 12 in
  let random = Rewire.randomize secret (Prng.create 1) in
  Printf.printf "lattice 12x12: %d triangles, %d squares\n" (Graph.triangle_count secret)
    (Graph.square_count secret);
  Printf.printf "rewired control: %d triangles, %d squares\n\n"
    (Graph.triangle_count random) (Graph.square_count random);

  (* Compare the two motif signals under one measurement each. *)
  let epsilon = 0.5 in
  let budget = Budget.create ~name:"lattice" (10.0 *. epsilon) in
  let sym = Batch.source_records ~budget (Graph.directed_edges secret) in
  let tbi = Batch.noisy_count ~rng:(Prng.create 2) ~epsilon (Qb.tbi sym) in
  let sbi = Batch.noisy_count ~rng:(Prng.create 3) ~epsilon (Qb.sbi sym) in
  Printf.printf "TbI (triangles, 4eps): measured %+.2f  (no triangles -> pure noise)\n"
    (Measurement.value tbi ());
  Printf.printf "SbI (squares,   6eps): measured %+.2f  (real square signal)\n"
    (Measurement.value sbi ());
  Printf.printf "budget spent: %.2f of %.2f\n\n" (Budget.spent budget) (Budget.total budget);

  (* Fit a rewired seed back toward the lattice using only the SbI count.
     The edge-swap walk preserves degrees; the SbI target restores
     squares. *)
  let fit =
    Fit.create ~rng:(Prng.create 4) ~seed_graph:random
      ~targets:[ (fun flow -> Flow.Target.create (Qf.sbi flow) sbi) ]
      ()
  in
  Printf.printf "fitting the rewired control to the SbI measurement:\n";
  Printf.printf "%10s %10s %10s\n" "step" "squares" "energy";
  let steps_per_round = 4_000 in
  Printf.printf "%10d %10d %10.3f\n" 0 (Graph.square_count (Fit.graph fit)) (Fit.energy fit);
  for round = 1 to 8 do
    ignore (Fit.run fit ~steps:steps_per_round ~pow:10_000.0 ());
    Printf.printf "%10d %10d %10.3f\n" (round * steps_per_round)
      (Graph.square_count (Fit.graph fit))
      (Fit.energy fit)
  done;
  Printf.printf "\ntarget: %d squares (the secret lattice).\n" (Graph.square_count secret)
