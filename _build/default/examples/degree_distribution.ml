(* Differentially-private degree distributions (paper, Section 3.1).

   Measures the degree sequence and degree CCDF of a graph under edge-DP,
   then reconciles the two noisy views with the lowest-cost grid-path fit
   and compares against PAVA-only and raw estimates.

   Run with:  dune exec examples/degree_distribution.exe *)

module Graph = Wpinq_graph.Graph
module Prng = Wpinq_prng.Prng
module Budget = Wpinq_core.Budget
module Batch = Wpinq_core.Batch
module Measurement = Wpinq_core.Measurement
module Workflow = Wpinq_infer.Workflow
module Datasets = Wpinq_data.Datasets

let l1_error truth fitted =
  let n = max (Array.length truth) (Array.length fitted) in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    let t = if i < Array.length truth then float_of_int truth.(i) else 0.0 in
    let f = if i < Array.length fitted then float_of_int fitted.(i) else 0.0 in
    acc := !acc +. Float.abs (t -. f)
  done;
  !acc

let () =
  let secret = Datasets.load ~scale:0.5 Datasets.grqc in
  let truth = Graph.degree_sequence_desc secret in
  Printf.printf "secret graph: %d nodes, %d edges, dmax %d\n\n" (Graph.n secret)
    (Graph.m secret) (Graph.dmax secret);

  let epsilon = 0.1 in
  (* Total privacy cost: 3 eps (sequence + ccdf + node count each touch the
     edges once). *)
  let budget = Budget.create ~name:"edges" (3.0 *. epsilon) in
  let sym = Batch.source_records ~budget (Graph.directed_edges secret) in
  let ms = Workflow.measure_seed ~rng:(Prng.create 1) ~epsilon ~sym in
  Printf.printf "budget spent: %.2f of %.2f (3 measurements at eps=%.2f)\n\n"
    (Budget.spent budget) (Budget.total budget) epsilon;

  (* Raw noisy sequence, PAVA-only, and the joint grid-path fit. *)
  let raw =
    Array.init (Array.length truth) (fun x ->
        int_of_float (Float.round (Measurement.value ms.Workflow.deg_seq x)))
  in
  let pava = Workflow.fit_degrees_pava_only ms in
  let grid = Workflow.fit_degrees ms in
  Printf.printf "%-28s %10s\n" "estimator" "L1 error";
  Printf.printf "%-28s %10.1f\n" "raw noisy sequence" (l1_error truth raw);
  Printf.printf "%-28s %10.1f\n" "PAVA (isotonic only)" (l1_error truth pava);
  Printf.printf "%-28s %10.1f\n\n" "grid path (seq + ccdf)" (l1_error truth grid);

  Printf.printf "head of the degree sequence (truth / raw / pava / grid):\n";
  for i = 0 to min 14 (Array.length truth - 1) do
    Printf.printf "  #%02d   %3d  /  %4d  /  %4d  /  %3d\n" i truth.(i)
      (if i < Array.length raw then raw.(i) else 0)
      (if i < Array.length pava then pava.(i) else 0)
      (if i < Array.length grid then grid.(i) else 0)
  done;

  (* The fitted sequence seeds a synthetic graph with the same profile. *)
  let seed = Workflow.seed_graph ~rng:(Prng.create 2) ~degrees:grid in
  Printf.printf "\nseed graph from the DP degree sequence: %d nodes, %d edges, dmax %d\n"
    (Graph.n seed) (Graph.m seed) (Graph.dmax seed);
  Printf.printf "(compare: the secret graph has %d edges and dmax %d)\n" (Graph.m secret)
    (Graph.dmax secret)
