(* Quickstart: weighted datasets, stable transformations, privacy budgets,
   and why calibrating *data* to sensitivity beats calibrating noise.

   Run with:  dune exec examples/quickstart.exe *)

module Wdata = Wpinq_weighted.Wdata
module Ops = Wpinq_weighted.Ops
module Prng = Wpinq_prng.Prng
module Budget = Wpinq_core.Budget
module Batch = Wpinq_core.Batch
module Measurement = Wpinq_core.Measurement
module Graph = Wpinq_graph.Graph
module Q = Wpinq_queries.Queries.Make (Batch)

let pp_int = Format.pp_print_int

let print_wdata name d =
  Format.printf "%-22s %a@." name (Wdata.pp pp_int) d

let () =
  (* --- 1. Weighted datasets (paper, Section 2.1) --- *)
  Format.printf "=== Weighted datasets ===@.";
  let a = Wdata.of_list [ (1, 0.75); (2, 2.0); (3, 1.0) ] in
  let b = Wdata.of_list [ (1, 3.0); (4, 2.0) ] in
  print_wdata "A =" a;
  print_wdata "B =" b;
  Format.printf "‖A‖ = %g, ‖A − B‖ = %g@.@." (Wdata.norm a) (Wdata.dist a b);

  (* --- 2. Stable transformations rescale weights, not noise --- *)
  Format.printf "=== Stable transformations ===@.";
  print_wdata "Select (mod 2) A =" (Ops.select (fun x -> x mod 2) a);
  print_wdata "Where (x² < 5) A =" (Ops.where (fun x -> x * x < 5) a);
  print_wdata "Concat A B =" (Ops.concat a b);
  print_wdata "Intersect A B =" (Ops.intersect a b);
  let joined =
    Ops.join ~kl:(fun x -> x mod 2) ~kr:(fun y -> y mod 2) ~reduce:(fun x y -> (10 * x) + y) a b
  in
  print_wdata "Join A B (parity) =" joined;
  Format.printf "@.";

  (* --- 3. Differentially-private aggregation with a budget --- *)
  Format.printf "=== NoisyCount under a privacy budget ===@.";
  let budget = Budget.create ~name:"demo" 1.0 in
  let source = Batch.source ~budget [ (1, 0.75); (2, 2.0); (3, 1.0) ] in
  let rng = Prng.create 42 in
  let m = Batch.noisy_count ~rng ~epsilon:0.5 (Batch.select (fun x -> x mod 2) source) in
  Format.printf "noisy count of odd records: %.3f (true 1.75)@." (Measurement.value m 1);
  Format.printf "noisy count of a record never present: %.3f (pure noise)@."
    (Measurement.value m 99);
  Format.printf "budget: spent %.2f of %.2f@.@." (Budget.spent budget) (Budget.total budget);

  (* --- 4. Figure 1: counting triangles without worst-case noise --- *)
  Format.printf "=== Figure 1: triangles, worst case vs. best case ===@.";
  (* Worst case: two hubs joined to everyone; adding edge (0,1) would
     create |V|−2 triangles at once.  Best case: a ring of triangles. *)
  let v = 60 in
  let worst =
    Graph.of_edges (List.concat_map (fun i -> [ (0, i); (1, i) ]) (List.init (v - 2) (fun i -> i + 2)))
  in
  let best =
    Graph.of_edges
      (List.concat_map
         (fun i -> [ (3 * i, (3 * i) + 1); ((3 * i) + 1, (3 * i) + 2); (3 * i, (3 * i) + 2) ])
         (List.init (v / 3) (fun i -> i)))
  in
  let measure g name =
    let budget = Budget.create ~name 1e9 in
    let sym = Batch.source_records ~budget (Graph.directed_edges g) in
    (* The TbI query weighs each triangle by ~1/max-degree, so one noisy
       count at constant noise measures the triangle mass. *)
    let m = Batch.noisy_count ~rng ~epsilon:0.5 (Q.tbi sym) in
    let noisy = Measurement.value m () in
    Format.printf
      "%-12s true triangles: %4d; TbI weighted signal: %7.2f measured %7.2f (constant noise)@."
      name (Graph.triangle_count g) (Graph.tbi_signal g) noisy
  in
  measure worst "worst-case";
  measure best "best-case";
  Format.printf
    "With worst-case sensitivity both graphs would need noise ∝ |V|−2 = %d;@." (v - 2);
  Format.printf
    "with weighted data the best-case graph keeps a strong signal at O(1) noise.@."
