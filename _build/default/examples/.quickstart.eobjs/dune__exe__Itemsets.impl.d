examples/itemsets.ml: Format List String Wpinq_core Wpinq_prng Wpinq_weighted
