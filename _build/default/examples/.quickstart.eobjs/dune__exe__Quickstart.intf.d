examples/quickstart.mli:
