examples/microdata.mli:
