examples/triangle_synthesis.ml: List Printf Wpinq_data Wpinq_graph Wpinq_infer Wpinq_prng
