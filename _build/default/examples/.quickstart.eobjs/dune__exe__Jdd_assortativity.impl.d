examples/jdd_assortativity.ml: Hashtbl List Option Printf String Wpinq_core Wpinq_data Wpinq_graph Wpinq_prng Wpinq_queries
