examples/triangle_synthesis.mli:
