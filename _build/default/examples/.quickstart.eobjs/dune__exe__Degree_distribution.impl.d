examples/degree_distribution.ml: Array Float Printf Wpinq_core Wpinq_data Wpinq_graph Wpinq_infer Wpinq_prng
