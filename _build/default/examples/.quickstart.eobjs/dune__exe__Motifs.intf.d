examples/motifs.mli:
