examples/motifs.ml: Printf Wpinq_core Wpinq_graph Wpinq_infer Wpinq_prng Wpinq_queries
