examples/quickstart.ml: Format List Wpinq_core Wpinq_graph Wpinq_prng Wpinq_queries Wpinq_weighted
