examples/itemsets.mli:
