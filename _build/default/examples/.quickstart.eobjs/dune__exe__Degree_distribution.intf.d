examples/degree_distribution.mli:
