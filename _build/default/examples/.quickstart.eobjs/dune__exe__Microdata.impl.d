examples/microdata.ml: Float Format List Wpinq_core Wpinq_data Wpinq_prng Wpinq_weighted
