examples/jdd_assortativity.mli:
