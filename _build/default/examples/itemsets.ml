(* wPINQ beyond graphs: differentially-private frequent itemsets.

   Section 2.4 motivates SelectMany with basket analysis: each basket maps
   to its size-k subsets, and the per-record rescaling (by the number of
   subsets the basket actually produces) keeps the query stable without a
   worst-case bound on basket size.

   Run with:  dune exec examples/itemsets.exe *)

module Prng = Wpinq_prng.Prng
module Budget = Wpinq_core.Budget
module Batch = Wpinq_core.Batch
module Measurement = Wpinq_core.Measurement

(* All size-k subsets, in a canonical sorted order. *)
let rec subsets k items =
  if k = 0 then [ [] ]
  else
    match items with
    | [] -> []
    | x :: rest -> List.map (fun s -> x :: s) (subsets (k - 1) rest) @ subsets k rest

let () =
  let baskets =
    [
      [ "bread"; "milk" ];
      [ "bread"; "milk"; "eggs" ];
      [ "bread"; "milk"; "eggs"; "beer" ];
      [ "milk"; "eggs" ];
      [ "bread"; "milk" ];
      [ "beer"; "eggs" ];
      [ "bread"; "milk"; "beer" ];
      [ "bread"; "milk" ];
    ]
  in
  let budget = Budget.create ~name:"baskets" 1.0 in
  let source = Batch.source_records ~budget baskets in

  (* Map each basket to its item pairs; weight is rescaled per basket by
     how many pairs it produced, so a huge basket cannot dominate. *)
  let pairs = Batch.select_many_list (fun basket -> subsets 2 (List.sort compare basket)) source in
  Format.printf "=== Exact (non-private) pair weights ===@.";
  List.iter
    (fun (pair, w) -> Format.printf "  %-22s %.3f@." (String.concat "+" pair) w)
    (List.sort compare (Wpinq_weighted.Wdata.to_sorted_list (Batch.unsafe_value pairs)));

  let rng = Prng.create 11 in
  let m = Batch.noisy_count ~rng ~epsilon:0.5 pairs in
  Format.printf "@.=== Differentially-private pair weights (eps = 0.5) ===@.";
  List.iter
    (fun (pair, v) -> Format.printf "  %-22s %.3f@." (String.concat "+" pair) v)
    (List.sort compare (Measurement.observed m));
  Format.printf "@.budget spent: %.2f of %.2f@." (Budget.spent budget) (Budget.total budget);
  Format.printf
    "A basket of n items yields C(n,2) pairs each at weight 1/C(n,2): adding or@.";
  Format.printf
    "removing any one basket moves the output by at most total weight 1 - the@.";
  Format.printf "stability that lets one constant-noise measurement cover every pair.@."
