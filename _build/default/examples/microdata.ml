(* wPINQ on tabular microdata: histograms, Partition with parallel
   composition, noisy averages, and the exponential mechanism.

   This is the PINQ-style workload the platform subsumes: no graphs, no
   MCMC — just a privacy budget stretched across several analyses of a
   census-style table, with the ledger printed at the end.

   Run with:  dune exec examples/microdata.exe *)

module Prng = Wpinq_prng.Prng
module Budget = Wpinq_core.Budget
module Batch = Wpinq_core.Batch
module Measurement = Wpinq_core.Measurement
module Mechanisms = Wpinq_core.Mechanisms
module Microdata = Wpinq_data.Microdata

let () =
  let rng = Prng.create 2026 in
  let people = Microdata.generate ~n:5_000 rng in
  let budget = Budget.create ~name:"census" 1.0 in
  let table = Batch.source_records ~budget people in

  (* 1. Age histogram by decade: one 0.2-DP measurement covers every
        bucket, because the buckets are disjoint images of one Select. *)
  Format.printf "=== Age histogram (decades), eps = 0.2 ===@.";
  let decades = Batch.select (fun p -> p.Microdata.age / 10 * 10) table in
  let m = Batch.noisy_count ~rng ~epsilon:0.2 decades in
  List.iter
    (fun d ->
      let true_count =
        List.length (List.filter (fun p -> p.Microdata.age / 10 * 10 = d) people)
      in
      Format.printf "  %2d-%2d: %7.1f  (true %d)@." d (d + 9) (Measurement.value m d)
        true_count)
    [ 10; 20; 30; 40; 50; 60; 70; 80 ];

  (* 2. Per-region population via Partition: five measurements, but the
        parts are disjoint so the budget pays only the MAX (0.2), not the
        sum (1.0). *)
  Format.printf "@.=== Regional counts via Partition (parallel composition) ===@.";
  let spent_before = Budget.spent budget in
  let parts =
    Batch.partition ~keys:Microdata.regions ~key:(fun p -> p.Microdata.region) table
  in
  List.iter
    (fun (region, part) ->
      let m = Batch.noisy_count ~rng ~epsilon:0.2 (Batch.select (fun _ -> ()) part) in
      let true_count = List.length (List.filter (fun p -> p.Microdata.region = region) people) in
      Format.printf "  %-6s %7.1f  (true %d)@." region (Measurement.value m ()) true_count)
    parts;
  Format.printf "  five 0.2-DP queries cost the parent %.2f, not 1.00@."
    (Budget.spent budget -. spent_before);

  (* 3. Average income, clamped to control sensitivity. *)
  Format.printf "@.=== Average income (noisy_average, clamp 250k), eps = 0.3 ===@.";
  let avg =
    Mechanisms.noisy_average ~rng ~epsilon:0.3 ~clamp:250_000.0
      ~f:(fun p -> p.Microdata.income)
      table
  in
  Format.printf "  estimated %.0f  (true %.0f)@." avg (Microdata.exact_mean_income people);

  (* 4. Highest-income region by the exponential mechanism: score = total
        clamped income share, 1-Lipschitz per unit record weight. *)
  Format.printf "@.=== Richest region (exponential mechanism), eps = 0.3 ===@.";
  let mean_income_score region data =
    (* Average of per-person incomes clamped to [0, 1] millions: a
       1-Lipschitz-per-record score. *)
    Wpinq_weighted.Wdata.fold
      (fun p w acc ->
        if p.Microdata.region = region then
          acc +. (w *. Float.min 1.0 (p.Microdata.income /. 1_000_000.0))
        else acc)
      data 0.0
  in
  let winner =
    Mechanisms.exponential ~rng ~epsilon:0.3 ~candidates:Microdata.regions
      ~score:mean_income_score table
  in
  Format.printf "  chosen: %s  (the generator makes 'coast' richest)@." winner;

  (* 5. The ledger. *)
  Format.printf "@.=== Budget ledger for %s ===@." (Budget.name budget);
  List.iter (fun (label, eps) -> Format.printf "  %-22s %.3f@." label eps) (Budget.log budget);
  Format.printf "  total spent: %.3f of %.3f@." (Budget.spent budget) (Budget.total budget)
