(* End-to-end private graph synthesis (paper, Sections 4-5).

   Measures a protected graph with the TbI query, throws the graph away,
   and fits a public synthetic graph to the noisy measurements with the
   edge-swap Metropolis-Hastings walk over the incremental engine.

   Run with:  dune exec examples/triangle_synthesis.exe *)

module Graph = Wpinq_graph.Graph
module Prng = Wpinq_prng.Prng
module Workflow = Wpinq_infer.Workflow
module Datasets = Wpinq_data.Datasets

let () =
  let secret = Datasets.load ~scale:0.5 Datasets.grqc in
  let random = Datasets.random_counterpart secret in
  Printf.printf "secret graph:      %5d triangles, assortativity %+.3f\n"
    (Graph.triangle_count secret) (Graph.assortativity secret);
  Printf.printf "random same-degree: %5d triangles (the control)\n\n"
    (Graph.triangle_count random);

  let run name g =
    let r =
      Workflow.synthesize ~rng:(Prng.create 7) ~epsilon:0.1 ~query:(Some Workflow.Tbi)
        ~steps:30_000 ~trace_every:5_000 ~secret:g ()
    in
    Printf.printf "%s: privacy cost %.2f (3eps seed + 4eps TbI)\n" name
      r.Workflow.total_epsilon;
    Printf.printf "%10s %10s %14s %10s\n" "step" "triangles" "assortativity" "energy";
    List.iter
      (fun (p : Workflow.trace_point) ->
        Printf.printf "%10d %10d %+14.3f %10.2f\n" p.Workflow.step p.Workflow.triangles
          p.Workflow.assortativity p.Workflow.energy)
      r.Workflow.trace;
    Printf.printf "accepted %d of %d proposals\n\n" r.Workflow.stats.Wpinq_infer.Mcmc.accepted
      r.Workflow.stats.Wpinq_infer.Mcmc.steps;
    r
  in
  let real = run "fitting the real graph" secret in
  let rand = run "fitting the random control" random in
  Printf.printf
    "MCMC pushed the synthetic graph to %d triangles for the real graph but only\n\
     %d for the degree-matched random control: the TbI measurement carries real\n\
     triangle information, not just degree structure.\n"
    (Graph.triangle_count real.Workflow.synthetic)
    (Graph.triangle_count rand.Workflow.synthetic)
